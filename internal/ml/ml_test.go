package ml

import (
	"math"
	"math/rand"
	"testing"
)

// gradCheck verifies backprop end-to-end: with momentum 0 and a single
// full-batch TrainEpoch step, the implied gradient (wBefore − wAfter)/lr
// must match the central finite difference of the evaluation loss.
func gradCheck(t *testing.T, build func() Classifier, samples []Sample, probes int, tol float64) {
	t.Helper()
	const lr = 1e-3
	model := build()
	before := model.ParamVector()

	stepped := build()
	if err := stepped.SetParamVector(before); err != nil {
		t.Fatal(err)
	}
	if _, err := stepped.TrainEpoch(samples, len(samples), lr, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	after := stepped.ParamVector()

	lossAt := func(v []float64) float64 {
		probe := build()
		if err := probe.SetParamVector(v); err != nil {
			t.Fatal(err)
		}
		loss, _, err := probe.Evaluate(samples)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}

	rng := rand.New(rand.NewSource(7))
	n := len(before)
	for probe := 0; probe < probes; probe++ {
		i := rng.Intn(n)
		gBackprop := (before[i] - after[i]) / lr
		h := 1e-5 * math.Max(1, math.Abs(before[i]))
		vp := append([]float64(nil), before...)
		vm := append([]float64(nil), before...)
		vp[i] += h
		vm[i] -= h
		gNumeric := (lossAt(vp) - lossAt(vm)) / (2 * h)
		scale := math.Max(1, math.Max(math.Abs(gBackprop), math.Abs(gNumeric)))
		if math.Abs(gBackprop-gNumeric)/scale > tol {
			t.Errorf("param %d: backprop grad %v vs numeric %v", i, gBackprop, gNumeric)
		}
	}
}

func blobSamples(rng *rand.Rand, n, dim, classes int) []Sample {
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = rng.NormFloat64() * 2
		}
	}
	samples := make([]Sample, n)
	for i := range samples {
		c := i % classes
		x := make([]float64, dim)
		for d := range x {
			x[d] = centers[c][d] + rng.NormFloat64()*0.4
		}
		samples[i] = Sample{Features: x, Label: c}
	}
	return samples
}

func TestDenseNetworkGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := blobSamples(rng, 12, 5, 3)
	build := func() Classifier {
		m, err := NewMLP(5, []int{7}, 3, 0, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	gradCheck(t, build, samples, 30, 1e-3)
}

func TestConvNetworkGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	samples := make([]Sample, 6)
	for i := range samples {
		x := make([]float64, 2*6*6)
		for d := range x {
			x[d] = rng.NormFloat64()
		}
		samples[i] = Sample{Features: x, Label: i % 3}
	}
	build := func() Classifier {
		m, err := NewImageCNN(ImageModelConfig{
			Channels: 2, Height: 6, Width: 6, Classes: 3,
			ConvChannels: []int{4},
			Hidden:       8,
			DropoutRate:  0, // dropout breaks determinism of the check
			Momentum:     0,
		}, rand.New(rand.NewSource(13)))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	gradCheck(t, build, samples, 30, 2e-3)
}

func TestLSTMGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	samples := make([]Sample, 6)
	for i := range samples {
		toks := make([]int, 5)
		for j := range toks {
			toks[j] = rng.Intn(8)
		}
		samples[i] = Sample{Tokens: toks, Label: i % 3}
	}
	build := func() Classifier {
		m, err := NewLSTMClassifier(LSTMConfig{Vocab: 8, Embed: 4, Hidden: 6, Classes: 3}, rand.New(rand.NewSource(17)))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	gradCheck(t, build, samples, 30, 2e-3)
}

func TestNetworkLearnsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	train := blobSamples(rng, 300, 6, 4)
	test := blobSamples(rng, 100, 6, 4)
	// Same centers are required for train/test to agree; rebuild with one rng
	// source means centers differ, so regenerate jointly instead.
	all := blobSamples(rand.New(rand.NewSource(22)), 400, 6, 4)
	train, test = all[:300], all[300:]

	m, err := NewMLP(6, []int{16}, 4, 0.9, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatal(err)
	}
	trainRng := rand.New(rand.NewSource(24))
	for epoch := 0; epoch < 30; epoch++ {
		if _, err := m.TrainEpoch(train, 16, 0.05, trainRng); err != nil {
			t.Fatal(err)
		}
	}
	_, acc, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("MLP accuracy on separable blobs = %v, want >= 0.9", acc)
	}
}

func TestCNNLearnsOrientationTask(t *testing.T) {
	// Class 0: bright horizontal band; class 1: bright vertical band.
	rng := rand.New(rand.NewSource(31))
	mk := func(n int) []Sample {
		out := make([]Sample, n)
		for i := range out {
			x := make([]float64, 8*8)
			label := i % 2
			pos := 2 + rng.Intn(4)
			for j := 0; j < 8; j++ {
				if label == 0 {
					x[pos*8+j] = 1
				} else {
					x[j*8+pos] = 1
				}
			}
			for d := range x {
				x[d] += rng.NormFloat64() * 0.1
			}
			out[i] = Sample{Features: x, Label: label}
		}
		return out
	}
	train, test := mk(240), mk(80)
	m, err := NewImageCNN(ImageModelConfig{
		Channels: 1, Height: 8, Width: 8, Classes: 2,
		ConvChannels: []int{6}, Hidden: 16, DropoutRate: 0.1, Momentum: 0.9,
	}, rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatal(err)
	}
	trainRng := rand.New(rand.NewSource(34))
	for epoch := 0; epoch < 12; epoch++ {
		if _, err := m.TrainEpoch(train, 16, 0.03, trainRng); err != nil {
			t.Fatal(err)
		}
	}
	_, acc, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("CNN accuracy on orientation task = %v, want >= 0.9", acc)
	}
}

func TestLSTMLearnsMajorityToken(t *testing.T) {
	// The class is the token that appears most often in the sequence.
	rng := rand.New(rand.NewSource(41))
	const classes = 3
	mk := func(n int) []Sample {
		out := make([]Sample, n)
		for i := range out {
			label := i % classes
			toks := make([]int, 8)
			for j := range toks {
				if rng.Float64() < 0.7 {
					toks[j] = label
				} else {
					toks[j] = rng.Intn(classes + 3)
				}
			}
			out[i] = Sample{Tokens: toks, Label: label}
		}
		return out
	}
	train, test := mk(300), mk(90)
	m, err := NewLSTMClassifier(LSTMConfig{Vocab: classes + 3, Embed: 6, Hidden: 12, Classes: classes, Momentum: 0.9}, rand.New(rand.NewSource(43)))
	if err != nil {
		t.Fatal(err)
	}
	trainRng := rand.New(rand.NewSource(44))
	for epoch := 0; epoch < 15; epoch++ {
		if _, err := m.TrainEpoch(train, 16, 0.05, trainRng); err != nil {
			t.Fatal(err)
		}
	}
	_, acc, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("LSTM accuracy on majority-token task = %v, want >= 0.85", acc)
	}
}

func TestParamVectorRoundTrip(t *testing.T) {
	models := map[string]Classifier{}
	m1, err := NewMLP(4, []int{5}, 3, 0.9, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	models["mlp"] = m1
	m2, err := NewLSTMClassifier(LSTMConfig{Vocab: 5, Embed: 3, Hidden: 4, Classes: 2}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	models["lstm"] = m2
	for name, m := range models {
		m := m
		t.Run(name, func(t *testing.T) {
			v := m.ParamVector()
			if len(v) != m.NumParams() {
				t.Fatalf("ParamVector len %d != NumParams %d", len(v), m.NumParams())
			}
			mod := append([]float64(nil), v...)
			for i := range mod {
				mod[i] += 0.5
			}
			if err := m.SetParamVector(mod); err != nil {
				t.Fatal(err)
			}
			got := m.ParamVector()
			for i := range got {
				if math.Abs(got[i]-mod[i]) > 1e-15 {
					t.Fatalf("round trip mismatch at %d", i)
				}
			}
			if err := m.SetParamVector(mod[:len(mod)-1]); err == nil {
				t.Error("short vector: want error")
			}
		})
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m, err := NewMLP(4, []int{5}, 3, 0.9, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	clone := m.Clone()
	origVec := m.ParamVector()
	cloneVec := clone.ParamVector()
	for i := range origVec {
		if origVec[i] != cloneVec[i] {
			t.Fatal("clone parameters differ from original")
		}
	}
	// Training the clone must not move the original.
	samples := blobSamples(rand.New(rand.NewSource(2)), 20, 4, 3)
	if _, err := clone.TrainEpoch(samples, 10, 0.1, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	after := m.ParamVector()
	for i := range origVec {
		if origVec[i] != after[i] {
			t.Fatal("training the clone mutated the original")
		}
	}
}

func TestNetworkValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewMLP(4, nil, 1, 0, rng); err == nil {
		t.Error("single class: want error")
	}
	if _, err := NewNetwork(3, 0, nil, func(r *rand.Rand) ([]Layer, error) {
		return []Layer{NewDense(2, 3, r)}, nil
	}); err == nil {
		t.Error("nil rng: want error")
	}
	if _, err := NewNetwork(3, 0, rng, func(r *rand.Rand) ([]Layer, error) {
		return []Layer{NewDense(2, 5, r), NewDense(4, 3, r)}, nil
	}); err == nil {
		t.Error("mismatched layer dims: want error")
	}
	if _, err := NewNetwork(3, 0, rng, func(r *rand.Rand) ([]Layer, error) {
		return []Layer{NewDense(2, 5, r)}, nil
	}); err == nil {
		t.Error("final layer != classes: want error")
	}
	if _, err := NewImageCNN(ImageModelConfig{Channels: 0, Height: 8, Width: 8, Classes: 2, Hidden: 4}, rng); err == nil {
		t.Error("zero channels: want error")
	}
	if _, err := NewConv2D(1, 2, 2, 4, 3, rng); err == nil {
		t.Error("kernel larger than input: want error")
	}
	if _, err := NewMaxPool2D(1, 1, 1); err == nil {
		t.Error("tiny pool input: want error")
	}
}

func TestTrainingErrors(t *testing.T) {
	m, err := NewMLP(4, []int{5}, 3, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if _, err := m.TrainEpoch(nil, 8, 0.1, rng); err == nil {
		t.Error("no samples: want error")
	}
	if _, err := m.TrainEpoch([]Sample{{Features: []float64{1}, Label: 0}}, 8, 0.1, rng); err == nil {
		t.Error("wrong feature size: want error")
	}
	if _, err := m.TrainEpoch([]Sample{{Features: []float64{1, 2, 3, 4}, Label: 9}}, 8, 0.1, rng); err == nil {
		t.Error("label out of range: want error")
	}
	if _, _, err := m.Evaluate(nil); err == nil {
		t.Error("evaluate no samples: want error")
	}

	lstm, err := NewLSTMClassifier(LSTMConfig{Vocab: 5, Embed: 3, Hidden: 4, Classes: 2}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lstm.TrainEpoch([]Sample{{Tokens: []int{99}, Label: 0}}, 4, 0.1, rng); err == nil {
		t.Error("token out of vocab: want error")
	}
	if _, err := lstm.TrainEpoch([]Sample{{Tokens: nil, Label: 0}}, 4, 0.1, rng); err == nil {
		t.Error("empty token sequence: want error")
	}
}

func TestPredictReturnsDistribution(t *testing.T) {
	m, err := NewMLP(4, []int{5}, 3, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	probs, err := m.Predict([]float64{0.1, 0.2, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Errorf("probability %v outside [0,1]", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v, want 1", sum)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Error("wrong input size: want error")
	}
}

func TestArgmax(t *testing.T) {
	if got := Argmax([]float64{0.1, 0.7, 0.2}); got != 1 {
		t.Errorf("Argmax = %d, want 1", got)
	}
	if got := Argmax([]float64{-5, -2, -9}); got != 1 {
		t.Errorf("Argmax negatives = %d, want 1", got)
	}
}

func TestSGDMomentumAcceleratesAlongConsistentGradient(t *testing.T) {
	// One parameter, constant gradient 1: momentum should move farther than
	// plain SGD after several steps.
	mk := func(momentum float64) float64 {
		p := newParam(1)
		opt := NewSGD([]Param{p}, momentum)
		for step := 0; step < 10; step++ {
			p.G[0] = 1
			opt.Step(0.1)
		}
		return p.W[0]
	}
	plain, fast := mk(0), mk(0.9)
	if fast >= plain {
		t.Errorf("momentum end point %v should be more negative than plain %v", fast, plain)
	}
}

func TestDropoutIdentityAtEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDropout(4, 0.5, rng)
	x := []float64{1, 2, 3, 4}
	y := d.Forward(x, 1, false)
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("dropout at eval should be identity")
		}
	}
	// Backward in eval mode passes gradients through untouched.
	g := d.Backward([]float64{1, 1, 1, 1}, 1)
	for _, v := range g {
		if v != 1 {
			t.Fatal("dropout eval backward should be identity")
		}
	}
}

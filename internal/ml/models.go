package ml

import (
	"fmt"
	"math/rand"
)

// ImageModelConfig sizes a CNN for the image experiments. The two presets
// below mirror the paper's architectures (footnotes 1 and 2 of §V-A) at
// reduced width so CPU-only training converges in seconds.
type ImageModelConfig struct {
	// Channels, Height, Width describe the input feature map.
	Channels, Height, Width int
	// Classes is the output arity (10 for every paper dataset).
	Classes int
	// ConvChannels lists the kernel counts of successive 3×3 conv blocks;
	// each block is conv → relu → maxpool2 (pool skipped when the map gets
	// too small).
	ConvChannels []int
	// Hidden is the width of the fully connected layer before the head.
	Hidden int
	// DropoutRate is applied before the hidden and output layers.
	DropoutRate float64
	// Momentum is the SGD momentum coefficient.
	Momentum float64
}

// MNISTCNNConfig mirrors the paper's 8-layer MNIST CNN
// (conv3×3×32 → conv3×3×64 → pool → dropout → dense128 → dropout → dense10)
// at reduced width for the h×w synthetic substitute.
func MNISTCNNConfig(h, w int) ImageModelConfig {
	return ImageModelConfig{
		Channels: 1, Height: h, Width: w, Classes: 10,
		ConvChannels: []int{8},
		Hidden:       48,
		DropoutRate:  0.15,
		Momentum:     0.9,
	}
}

// CIFARCNNConfig mirrors the paper's 11-layer CIFAR-10 CNN (two conv/pool
// blocks with dropout and a 1024-wide dense layer) at reduced width for the
// 3-channel synthetic substitute.
func CIFARCNNConfig(h, w int) ImageModelConfig {
	return ImageModelConfig{
		Channels: 3, Height: h, Width: w, Classes: 10,
		ConvChannels: []int{8, 12},
		Hidden:       64,
		DropoutRate:  0.2,
		Momentum:     0.9,
	}
}

// NewImageCNN builds a Network from an ImageModelConfig.
func NewImageCNN(cfg ImageModelConfig, rng *rand.Rand) (*Network, error) {
	if cfg.Channels < 1 || cfg.Height < 3 || cfg.Width < 3 {
		return nil, fmt.Errorf("ml: invalid input shape %dx%dx%d", cfg.Channels, cfg.Height, cfg.Width)
	}
	if cfg.Hidden < 1 {
		return nil, fmt.Errorf("ml: hidden width must be >= 1, got %d", cfg.Hidden)
	}
	builder := func(rng *rand.Rand) ([]Layer, error) {
		var layers []Layer
		ch, h, w := cfg.Channels, cfg.Height, cfg.Width
		for _, outC := range cfg.ConvChannels {
			conv, err := NewConv2D(ch, h, w, outC, 3, rng)
			if err != nil {
				return nil, err
			}
			layers = append(layers, conv)
			ch, h, w = conv.OutShape()
			layers = append(layers, NewReLU(ch*h*w))
			if h >= 4 && w >= 4 {
				pool, err := NewMaxPool2D(ch, h, w)
				if err != nil {
					return nil, err
				}
				layers = append(layers, pool)
				ch, h, w = pool.OutShape()
			}
		}
		flat := ch * h * w
		if cfg.DropoutRate > 0 {
			layers = append(layers, NewDropout(flat, cfg.DropoutRate, rng))
		}
		layers = append(layers,
			NewDense(flat, cfg.Hidden, rng),
			NewReLU(cfg.Hidden),
		)
		if cfg.DropoutRate > 0 {
			layers = append(layers, NewDropout(cfg.Hidden, cfg.DropoutRate, rng))
		}
		layers = append(layers, NewDense(cfg.Hidden, cfg.Classes, rng))
		return layers, nil
	}
	return NewNetwork(cfg.Classes, cfg.Momentum, rng, builder)
}

// NewMLP builds a plain multi-layer perceptron, useful for fast tests and
// the quickstart example.
func NewMLP(in int, hidden []int, classes int, momentum float64, rng *rand.Rand) (*Network, error) {
	builder := func(rng *rand.Rand) ([]Layer, error) {
		var layers []Layer
		prev := in
		for _, h := range hidden {
			layers = append(layers, NewDense(prev, h, rng), NewReLU(h))
			prev = h
		}
		layers = append(layers, NewDense(prev, classes, rng))
		return layers, nil
	}
	return NewNetwork(classes, momentum, rng, builder)
}

package mec

import (
	"math/rand"
	"testing"

	"fmore/internal/dist"
	"fmore/internal/ml"
)

func testPartition(n, perNode, classes int) [][]ml.Sample {
	part := make([][]ml.Sample, n)
	for i := range part {
		for j := 0; j < perNode; j++ {
			part[i] = append(part[i], ml.Sample{Features: []float64{1}, Label: j % classes})
		}
	}
	return part
}

func testPopulation(t *testing.T, n int) *Population {
	t.Helper()
	theta, err := dist.NewUniform(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := NewPopulation(PopulationConfig{
		N:         n,
		Theta:     theta,
		Partition: testPartition(n, 40, 4),
		Classes:   4,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestNewPopulation(t *testing.T) {
	pop := testPopulation(t, 10)
	if pop.N() != 10 {
		t.Fatalf("N = %d, want 10", pop.N())
	}
	for i, n := range pop.Nodes {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
		if n.Theta < 1 || n.Theta > 3 {
			t.Errorf("node %d theta %v outside support", i, n.Theta)
		}
		if n.Capacity.DataSize != 40 {
			t.Errorf("node %d capacity %d, want 40", i, n.Capacity.DataSize)
		}
		if n.Capacity.CategoryProportion != 1 {
			t.Errorf("node %d category proportion %v, want 1 (all 4 classes present)", i, n.Capacity.CategoryProportion)
		}
		if n.Capacity.BandwidthMbps < 5 || n.Capacity.BandwidthMbps > 100 {
			t.Errorf("node %d bandwidth %v outside default [5, 100]", i, n.Capacity.BandwidthMbps)
		}
		if n.Capacity.CPUCores < 1 || n.Capacity.CPUCores > 8 {
			t.Errorf("node %d cores %v outside default [1, 8]", i, n.Capacity.CPUCores)
		}
	}
}

func TestPopulationValidation(t *testing.T) {
	theta, err := dist.NewUniform(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		cfg  PopulationConfig
	}{
		{"zero N", PopulationConfig{N: 0, Theta: theta, Partition: nil, Classes: 2}},
		{"nil theta", PopulationConfig{N: 2, Partition: testPartition(2, 5, 2), Classes: 2}},
		{"partition mismatch", PopulationConfig{N: 3, Theta: theta, Partition: testPartition(2, 5, 2), Classes: 2}},
		{"zero classes", PopulationConfig{N: 2, Theta: theta, Partition: testPartition(2, 5, 2), Classes: 0}},
		{"bad bandwidth", PopulationConfig{N: 2, Theta: theta, Partition: testPartition(2, 5, 2), Classes: 2, BandwidthMin: -1, BandwidthMax: 5}},
		{"bad dynamics", PopulationConfig{N: 2, Theta: theta, Partition: testPartition(2, 5, 2), Classes: 2, DynamicMin: 0.9, DynamicMax: 0.5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewPopulation(c.cfg, rng); err == nil {
				t.Error("want error")
			}
		})
	}
	good := PopulationConfig{N: 2, Theta: theta, Partition: testPartition(2, 5, 2), Classes: 2}
	if _, err := NewPopulation(good, nil); err == nil {
		t.Error("nil rng: want error")
	}
}

func TestStepKeepsOfferedWithinCapacity(t *testing.T) {
	pop := testPopulation(t, 8)
	rng := rand.New(rand.NewSource(2))
	changed := false
	for round := 0; round < 10; round++ {
		pop.Step(rng)
		for _, n := range pop.Nodes {
			if n.Offered.DataSize > n.Capacity.DataSize || n.Offered.DataSize < 1 {
				t.Fatalf("offered size %d outside [1, %d]", n.Offered.DataSize, n.Capacity.DataSize)
			}
			if n.Offered.BandwidthMbps > n.Capacity.BandwidthMbps+1e-12 {
				t.Fatalf("offered bandwidth exceeds capacity")
			}
			if n.Offered.CPUCores > n.Capacity.CPUCores+1e-12 {
				t.Fatalf("offered cores exceed capacity")
			}
			if n.Offered.DataSize != n.Capacity.DataSize {
				changed = true
			}
		}
	}
	if !changed {
		t.Error("dynamics never reduced any offering; resources should fluctuate")
	}
}

func TestActiveExcludesBlacklisted(t *testing.T) {
	pop := testPopulation(t, 5)
	pop.Nodes[2].Blacklisted = true
	active := pop.Active()
	if len(active) != 4 {
		t.Fatalf("active = %d, want 4", len(active))
	}
	for _, n := range active {
		if n.ID == 2 {
			t.Error("blacklisted node still active")
		}
	}
}

func TestTimingModel(t *testing.T) {
	tm := TimingModel{ComputeSecPerSample: 0.01, ModelBytes: 1000000, RoundOverheadSec: 0.5}
	node := &EdgeNode{Offered: Resources{CPUCores: 2, BandwidthMbps: 8}}
	// compute: 100 samples × 2 epochs × 0.01 / 2 cores = 1s;
	// comm: 2 × 1e6 bytes × 8 bits / (8 Mbps × 1e6) = 2s.
	got := tm.NodeRoundTime(node, 100, 2)
	if want := 3.0; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("NodeRoundTime = %v, want %v", got, want)
	}

	fast := &EdgeNode{Offered: Resources{CPUCores: 8, BandwidthMbps: 100}}
	rt, err := tm.RoundTime([]*EdgeNode{node, fast}, []int{100, 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The slow node gates the round; plus overhead.
	if want := 3.5; rt < want-1e-9 || rt > want+1e-9 {
		t.Errorf("RoundTime = %v, want %v", rt, want)
	}
	if _, err := tm.RoundTime([]*EdgeNode{node}, []int{1, 2}, 1); err == nil {
		t.Error("mismatched lengths: want error")
	}
}

func TestTimingModelGuardsAgainstZeroResources(t *testing.T) {
	tm := DefaultTimingModel(1000)
	node := &EdgeNode{Offered: Resources{CPUCores: 0, BandwidthMbps: 0}}
	got := tm.NodeRoundTime(node, 10, 1)
	if got <= 0 || got > 1e6 {
		t.Errorf("NodeRoundTime with zero resources = %v; want positive and finite", got)
	}
}

func TestDefaultTimingModelScalesWithParams(t *testing.T) {
	small := DefaultTimingModel(1000)
	big := DefaultTimingModel(100000)
	if big.ModelBytes <= small.ModelBytes {
		t.Error("model bytes should grow with parameter count")
	}
}

// Package mec models the mobile-edge-computing population of the paper's
// system model (§II-A): N edge nodes (micro servers, home gateways, laptops,
// sensors) holding private local data and dynamic multi-dimensional resources
// (data size, data-category coverage, bandwidth, CPU), each with a private
// cost parameter θ drawn i.i.d. from a common-knowledge distribution.
//
// It also provides the deterministic training-time model used to reproduce
// the paper's real-cluster measurements (Fig. 12-13): per-round wall time =
// local compute time (samples × cost / cores) + model transfer time
// (bytes / bandwidth), evaluated per winner and reduced with the synchronous
// FedAvg barrier (the slowest winner gates the round).
package mec

import (
	"errors"
	"fmt"
	"math/rand"

	"fmore/internal/dist"
	"fmore/internal/ml"
)

// Resources is one node's currently offered resource vector. DataSize and
// CategoryProportion are the two dimensions of the paper's simulator;
// BandwidthMbps and CPUCores join them in the real-cluster experiment.
type Resources struct {
	// DataSize is the number of local samples offered this round (q₁).
	DataSize int
	// CategoryProportion is the fraction of classes covered locally (q₂).
	CategoryProportion float64
	// BandwidthMbps is the uplink bandwidth offered this round.
	BandwidthMbps float64
	// CPUCores is the computing power offered this round.
	CPUCores float64
}

// EdgeNode is one participant: its identity, private cost type, full local
// dataset, and the (dynamic) share of resources it currently offers.
type EdgeNode struct {
	// ID is the node index in [0, N).
	ID int
	// Theta is the private cost parameter, drawn from the population
	// distribution. Only the node itself uses it; the aggregator never
	// observes it.
	Theta float64
	// Local is the node's full local training set.
	Local []ml.Sample
	// Capacity is the full resource endowment; Offered (refreshed each
	// round) is what the node currently makes available.
	Capacity Resources
	// Offered is the currently offered slice of Capacity.
	Offered Resources

	// Blacklisted marks nodes that breached a contract (the paper's
	// defaulter handling); blacklisted nodes are excluded from future asks.
	Blacklisted bool
}

// PopulationConfig parameterizes NewPopulation.
type PopulationConfig struct {
	// N is the number of edge nodes.
	N int
	// Theta is the private-cost distribution F (common knowledge).
	Theta dist.Distribution
	// Partition distributes training data across the N nodes; it must have
	// exactly N node slots.
	Partition [][]ml.Sample
	// Classes is the label arity, used for category coverage.
	Classes int
	// BandwidthMbps and CPUCores bound the per-node hardware endowments,
	// drawn uniformly from the given ranges.
	BandwidthMin, BandwidthMax float64
	CPUMin, CPUMax             float64
	// DynamicMin/DynamicMax bound the per-round fraction of capacity a node
	// offers ("nodes randomly choose different quantities of resources in
	// each round", §V-A). Defaults to [0.5, 1].
	DynamicMin, DynamicMax float64
}

func (c *PopulationConfig) setDefaults() {
	if c.BandwidthMin == 0 && c.BandwidthMax == 0 {
		c.BandwidthMin, c.BandwidthMax = 5, 100 // the walk-through's range
	}
	if c.CPUMin == 0 && c.CPUMax == 0 {
		c.CPUMin, c.CPUMax = 1, 8 // the cluster's i7 core counts
	}
	if c.DynamicMin == 0 && c.DynamicMax == 0 {
		c.DynamicMin, c.DynamicMax = 0.5, 1
	}
}

func (c *PopulationConfig) validate() error {
	if c.N < 1 {
		return fmt.Errorf("mec: N must be >= 1, got %d", c.N)
	}
	if c.Theta == nil {
		return errors.New("mec: Theta distribution is required")
	}
	if len(c.Partition) != c.N {
		return fmt.Errorf("mec: partition has %d node slots, want %d", len(c.Partition), c.N)
	}
	if c.Classes < 1 {
		return fmt.Errorf("mec: Classes must be >= 1, got %d", c.Classes)
	}
	if !(c.BandwidthMin > 0 && c.BandwidthMax >= c.BandwidthMin) {
		return fmt.Errorf("mec: bandwidth range [%v, %v] invalid", c.BandwidthMin, c.BandwidthMax)
	}
	if !(c.CPUMin > 0 && c.CPUMax >= c.CPUMin) {
		return fmt.Errorf("mec: CPU range [%v, %v] invalid", c.CPUMin, c.CPUMax)
	}
	if !(c.DynamicMin > 0 && c.DynamicMin <= c.DynamicMax && c.DynamicMax <= 1) {
		return fmt.Errorf("mec: dynamic range [%v, %v] invalid", c.DynamicMin, c.DynamicMax)
	}
	return nil
}

// Population is the set of edge nodes plus the dynamics configuration.
type Population struct {
	Nodes []*EdgeNode

	classes    int
	dynMin     float64
	dynMax     float64
	categories []float64 // full-capacity category proportion per node
}

// NewPopulation draws a population: θᵢ ~ Theta i.i.d., hardware uniform in
// the configured ranges, and local data from the partition.
func NewPopulation(cfg PopulationConfig, rng *rand.Rand) (*Population, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("mec: rng is required")
	}
	pop := &Population{
		Nodes:      make([]*EdgeNode, cfg.N),
		classes:    cfg.Classes,
		dynMin:     cfg.DynamicMin,
		dynMax:     cfg.DynamicMax,
		categories: make([]float64, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		local := cfg.Partition[i]
		seen := make(map[int]bool)
		for _, s := range local {
			seen[s.Label] = true
		}
		catProp := float64(len(seen)) / float64(cfg.Classes)
		pop.categories[i] = catProp
		endow := Resources{
			DataSize:           len(local),
			CategoryProportion: catProp,
			BandwidthMbps:      cfg.BandwidthMin + rng.Float64()*(cfg.BandwidthMax-cfg.BandwidthMin),
			CPUCores:           cfg.CPUMin + rng.Float64()*(cfg.CPUMax-cfg.CPUMin),
		}
		pop.Nodes[i] = &EdgeNode{
			ID:       i,
			Theta:    cfg.Theta.Sample(rng),
			Local:    local,
			Capacity: endow,
			Offered:  endow,
		}
	}
	return pop, nil
}

// Step refreshes every node's offered resources for a new round: each
// dimension is scaled by an independent availability factor drawn from
// [dynMin, dynMax], modeling competing workloads on the device.
func (p *Population) Step(rng *rand.Rand) {
	for _, n := range p.Nodes {
		f := func() float64 { return p.dynMin + rng.Float64()*(p.dynMax-p.dynMin) }
		size := int(float64(n.Capacity.DataSize) * f())
		if size < 1 && n.Capacity.DataSize > 0 {
			size = 1
		}
		n.Offered = Resources{
			DataSize:           size,
			CategoryProportion: n.Capacity.CategoryProportion, // classes present don't fluctuate
			BandwidthMbps:      n.Capacity.BandwidthMbps * f(),
			CPUCores:           n.Capacity.CPUCores * f(),
		}
	}
}

// Active returns the non-blacklisted nodes.
func (p *Population) Active() []*EdgeNode {
	out := make([]*EdgeNode, 0, len(p.Nodes))
	for _, n := range p.Nodes {
		if !n.Blacklisted {
			out = append(out, n)
		}
	}
	return out
}

// N returns the population size.
func (p *Population) N() int { return len(p.Nodes) }

// TimingModel converts a winner's round work into simulated wall time,
// standing in for the paper's HPC-cluster measurements (see DESIGN.md §3).
type TimingModel struct {
	// ComputeSecPerSample is the per-sample, per-core-second training cost.
	ComputeSecPerSample float64
	// ModelBytes is the size of one model-parameter transfer (down + up is
	// counted as two transfers).
	ModelBytes int
	// RoundOverheadSec is fixed per-round coordination cost (bid ask, bid
	// collection, winner notification — the paper argues this is small).
	RoundOverheadSec float64
}

// DefaultTimingModel sizes the model from a parameter count (float64
// weights) with constants calibrated so that a 31-node round lands in the
// tens-of-seconds range like the paper's cluster.
func DefaultTimingModel(numParams int) TimingModel {
	return TimingModel{
		ComputeSecPerSample: 0.004,
		ModelBytes:          numParams * 8,
		RoundOverheadSec:    0.2,
	}
}

// NodeRoundTime returns the simulated seconds node spends training `samples`
// local examples for `epochs` passes and exchanging the model twice.
func (t TimingModel) NodeRoundTime(node *EdgeNode, samples, epochs int) float64 {
	cores := node.Offered.CPUCores
	if cores < 0.25 {
		cores = 0.25
	}
	compute := float64(samples*epochs) * t.ComputeSecPerSample / cores
	bw := node.Offered.BandwidthMbps
	if bw < 0.1 {
		bw = 0.1
	}
	comm := 2 * float64(t.ModelBytes) * 8 / (bw * 1e6)
	return compute + comm
}

// RoundTime returns the synchronous-round wall time: the slowest winner
// gates global aggregation.
func (t TimingModel) RoundTime(winners []*EdgeNode, samplesPerWinner []int, epochs int) (float64, error) {
	if len(winners) != len(samplesPerWinner) {
		return 0, fmt.Errorf("mec: %d winners vs %d sample counts", len(winners), len(samplesPerWinner))
	}
	slowest := 0.0
	for i, w := range winners {
		if rt := t.NodeRoundTime(w, samplesPerWinner[i], epochs); rt > slowest {
			slowest = rt
		}
	}
	return slowest + t.RoundOverheadSec, nil
}

package fault

import (
	"errors"
	"syscall"
	"testing"
	"time"
)

// tp creates a uniquely named test failpoint and disarms it on cleanup.
func tp(t *testing.T) *Failpoint {
	t.Helper()
	fp := New("test/" + t.Name())
	t.Cleanup(fp.disable)
	return fp
}

func TestDisabledFires(t *testing.T) {
	fp := tp(t)
	for i := 0; i < 3; i++ {
		if err := fp.Fire(); err != nil {
			t.Fatalf("disabled Fire returned %v", err)
		}
	}
	if n, err := fp.Cut(100); n != 100 || err != nil {
		t.Fatalf("disabled Cut = (%d, %v), want (100, nil)", n, err)
	}
	if fp.Fired() != 0 {
		t.Fatalf("Fired = %d on a disabled failpoint", fp.Fired())
	}
}

func TestEveryCall(t *testing.T) {
	fp := tp(t)
	fp.enable(Config{Err: ErrIO})
	for i := 0; i < 3; i++ {
		if err := fp.Fire(); !errors.Is(err, syscall.EIO) {
			t.Fatalf("call %d: err = %v, want EIO", i, err)
		}
	}
	if fp.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", fp.Fired())
	}
	fp.disable()
	if err := fp.Fire(); err != nil {
		t.Fatalf("Fire after disable = %v", err)
	}
	if fp.Fired() != 3 {
		t.Fatalf("Fired counter reset by disable: %d", fp.Fired())
	}
}

func TestNthOnce(t *testing.T) {
	fp := tp(t)
	fp.enable(Config{Err: ErrNoSpace, Nth: 3})
	var got []bool
	for i := 0; i < 5; i++ {
		got = append(got, fp.Fire() != nil)
	}
	want := []bool{false, false, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d fired=%v, want %v", i+1, got[i], want[i])
		}
	}
}

func TestNthSticky(t *testing.T) {
	fp := tp(t)
	fp.enable(Config{Err: ErrIO, Nth: 2, Sticky: true})
	want := []bool{false, true, true, true}
	for i := range want {
		if fired := fp.Fire() != nil; fired != want[i] {
			t.Fatalf("call %d fired=%v, want %v", i+1, fired, want[i])
		}
	}
}

func TestProbabilitySeeded(t *testing.T) {
	run := func() []bool {
		fp := New("test/prob/" + t.Name() + time.Now().Format("150405.000000000"))
		defer fp.disable()
		fp.enable(Config{Err: ErrIO, Prob: 0.5, Seed: 42})
		out := make([]bool, 32)
		for i := range out {
			out[i] = fp.Fire() != nil
		}
		return out
	}
	a, b := run(), run()
	var fires int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded probability not reproducible at call %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("p=0.5 over %d calls fired %d times", len(a), fires)
	}
}

func TestCutTorn(t *testing.T) {
	fp := tp(t)
	fp.enable(Config{Err: ErrIO, Torn: 9, Nth: 2, Sticky: true})
	if n, err := fp.Cut(100); n != 100 || err != nil {
		t.Fatalf("call 1: Cut = (%d, %v), want (100, nil)", n, err)
	}
	if n, err := fp.Cut(100); n != 9 || !errors.Is(err, syscall.EIO) {
		t.Fatalf("call 2: Cut = (%d, %v), want (9, EIO)", n, err)
	}
	// Torn larger than the write: the whole write goes through but the
	// error still surfaces.
	if n, err := fp.Cut(4); n != 4 || err == nil {
		t.Fatalf("call 3: Cut = (%d, %v), want (4, err)", n, err)
	}
}

func TestCutTornZero(t *testing.T) {
	fp := tp(t)
	fp.enable(Config{Err: ErrNoSpace})
	if n, err := fp.Cut(50); n != 0 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Cut = (%d, %v), want (0, ENOSPC)", n, err)
	}
}

func TestLatencyOnly(t *testing.T) {
	fp := tp(t)
	fp.enable(Config{Latency: 20 * time.Millisecond})
	start := time.Now()
	if err := fp.Fire(); err != nil {
		t.Fatalf("latency-only Fire returned %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("Fire returned after %v, want >= 20ms", d)
	}
	if fp.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", fp.Fired())
	}
}

func TestEnableValidation(t *testing.T) {
	if err := Enable("no/such/failpoint", Config{Err: ErrIO}); err == nil {
		t.Fatal("Enable on unknown name succeeded")
	}
	fp := tp(t)
	if err := Enable(fp.Name(), Config{}); err == nil {
		t.Fatal("Enable with empty config succeeded")
	}
	if err := Enable(fp.Name(), Config{Err: ErrIO, Nth: 1}); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	Disable(fp.Name())
	if err := fp.Fire(); err != nil {
		t.Fatalf("Fire after Disable = %v", err)
	}
	Disable("no/such/failpoint") // idempotent no-op
}

func TestEnableSpecs(t *testing.T) {
	a, b, c := tp(t), New("test/"+t.Name()+"/b"), New("test/"+t.Name()+"/c")
	t.Cleanup(b.disable)
	t.Cleanup(c.disable)
	spec := a.Name() + "=eio@2+; " + b.Name() + "=torn:7@3 ;" + c.Name() + "=enospc"
	if err := EnableSpecs(spec); err != nil {
		t.Fatalf("EnableSpecs: %v", err)
	}
	if err := a.Fire(); err != nil {
		t.Fatalf("a call 1 fired: %v", err)
	}
	if err := a.Fire(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("a call 2 = %v, want EIO", err)
	}
	if err := a.Fire(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("a call 3 (sticky) = %v, want EIO", err)
	}
	b.Fire()
	b.Fire()
	if n, err := b.Cut(100); n != 7 || err == nil {
		t.Fatalf("b call 3: Cut = (%d, %v), want (7, err)", n, err)
	}
	if err := c.Fire(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("c = %v, want ENOSPC", err)
	}
}

func TestEnableSpecsLatency(t *testing.T) {
	fp := tp(t)
	if err := EnableSpecs(fp.Name() + "=lat:5ms"); err != nil {
		t.Fatalf("EnableSpecs: %v", err)
	}
	start := time.Now()
	if err := fp.Fire(); err != nil {
		t.Fatalf("Fire = %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("latency spec not applied")
	}
}

func TestEnableSpecsErrors(t *testing.T) {
	fp := tp(t)
	for _, bad := range []string{
		"justaname",
		fp.Name() + "=",
		fp.Name() + "=frob",
		fp.Name() + "=torn",
		fp.Name() + "=eio:5",
		fp.Name() + "=lat:xyz",
		fp.Name() + "=eio@0",
		fp.Name() + "=eio@p2.0",
		fp.Name() + "=eio@junk",
		"no/such/point=eio",
	} {
		if err := EnableSpecs(bad); err == nil {
			t.Errorf("EnableSpecs(%q) succeeded", bad)
		}
	}
}

func TestEnableFromEnv(t *testing.T) {
	fp := tp(t)
	t.Setenv(EnvVar, fp.Name()+"=eio")
	if err := EnableFromEnv(); err != nil {
		t.Fatalf("EnableFromEnv: %v", err)
	}
	if err := fp.Fire(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Fire = %v, want EIO", err)
	}
	t.Setenv(EnvVar, "")
	DisableAll()
	if err := EnableFromEnv(); err != nil {
		t.Fatalf("EnableFromEnv with empty var: %v", err)
	}
	if err := fp.Fire(); err != nil {
		t.Fatalf("Fire after DisableAll = %v", err)
	}
}

func TestNames(t *testing.T) {
	fp := tp(t)
	found := false
	for _, name := range Names() {
		if name == fp.Name() {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() missing %q", fp.Name())
	}
}

func TestDuplicatePanics(t *testing.T) {
	fp := tp(t)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate New did not panic")
		}
	}()
	New(fp.Name())
}

// benchFP is package-level because the testing framework re-runs the
// benchmark body with growing N, and New panics on a duplicate name.
var benchFP = New("bench/disabled")

// BenchmarkFailpointDisabled pins the zero-cost claim for dormant sites:
// one atomic load, zero allocations.
func BenchmarkFailpointDisabled(b *testing.B) {
	fp := benchFP
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := fp.Fire(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

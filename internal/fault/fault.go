// Package fault is a deterministic failpoint framework: named injection
// sites compiled permanently into hot paths, disabled by default, and
// switched on by tests, the chaos harness, or an operator via the
// FMORE_FAILPOINTS environment variable.
//
// The design premise is that failure handling is code like any other code
// and deserves the same always-compiled, always-testable treatment — but
// must cost nothing when dormant. A disabled failpoint is one atomic
// pointer load and a predictable branch: zero allocations, no locks, no
// map lookups (BenchmarkFailpointDisabled pins this). Sites therefore stay
// in production builds; there is no build tag to forget.
//
// # Declaring and firing
//
// A site is a package-level var:
//
//	var fpWalFsync = fault.New("wal/fsync")
//
// and the hot path consults it where the real failure would surface:
//
//	if err := fpWalFsync.Fire(); err != nil {
//		return err
//	}
//	err := f.Sync()
//
// Fire returns nil unless the failpoint is enabled and its trigger says
// this call fails; then it returns the configured error (optionally after
// a configured latency). Cut is the variant for write paths: it bounds how
// many bytes the caller may hand to the real write, modelling torn/short
// writes that leave a partial frame on disk.
//
// # Triggers
//
// A Config selects when an enabled failpoint fires: on the Nth call
// (optionally sticky — every call from the Nth on), with a seeded
// probability per call, or — when neither is set — on every call.
// Probability draws use the configured seed, so a chaos run is
// reproducible from its spec string.
//
// # Spec strings
//
// EnableSpecs parses a compact operator-facing form, one or more
// semicolon-separated entries:
//
//	name=kind[:arg][@trigger]
//
// kinds:     eio | enospc | torn:<bytes> | lat:<duration>
// triggers:  @<n>   fire on the nth call only
//
//	@<n>+  fire on the nth call and every call after (sticky)
//	@p<f>  fire each call with probability f (seeded)
//
// e.g. FMORE_FAILPOINTS="wal/fsync=eio@3+;wal/write=torn:9@5" makes the
// third and later fsyncs fail with EIO and tears the fifth frame write
// after 9 bytes. EnableFromEnv applies the variable at process start.
package fault

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Injected error kinds. Both wrap the real syscall errno so callers'
// errors.Is(err, syscall.ENOSPC) checks treat injected and genuine disk
// errors identically — the point of injection is to exercise exactly the
// production handling path.
var (
	// ErrIO is the injected generic I/O failure (wraps syscall.EIO).
	ErrIO = fmt.Errorf("fault: injected I/O error: %w", syscall.EIO)
	// ErrNoSpace is the injected disk-full failure (wraps syscall.ENOSPC).
	ErrNoSpace = fmt.Errorf("fault: injected no space left on device: %w", syscall.ENOSPC)
)

// Config describes when an enabled failpoint fires and what it injects.
type Config struct {
	// Err is the injected error (required; use ErrIO/ErrNoSpace for disk
	// kinds, or any error for custom sites).
	Err error
	// Nth fires on the Nth Fire/Cut call after Enable (1-based). Zero
	// means "not call-counted": every call fires (unless Prob is set).
	Nth int64
	// Sticky extends Nth: fire on call Nth and every call after it,
	// modelling a device that stays broken once it breaks.
	Sticky bool
	// Prob fires each call independently with this probability, drawn
	// from a rng seeded with Seed. Takes precedence over Nth.
	Prob float64
	// Seed seeds the Prob rng (0 is a valid, fixed seed).
	Seed int64
	// Latency is slept before returning the injected error — and, when
	// Err is nil, before returning success: a pure latency fault.
	Latency time.Duration
	// Torn bounds Cut: a firing Cut allows min(Torn, n) bytes through and
	// returns Err, modelling a short write that leaves a partial record.
	// Zero means the firing Cut allows nothing through.
	Torn int
}

// state is the enabled-side payload behind the failpoint's atomic pointer.
// It is immutable after Enable except for the call counter and the
// mutex-guarded rng; Disable swaps the whole pointer back to nil.
type state struct {
	cfg   Config
	calls atomic.Int64
	rngMu sync.Mutex
	rng   *rand.Rand
}

// Failpoint is one named injection site. The zero value is not usable;
// create sites with New at package init.
type Failpoint struct {
	name  string
	fired atomic.Int64
	st    atomic.Pointer[state]
}

// registry maps names to sites for Enable-by-name (specs, env, tests).
var (
	regMu    sync.Mutex
	registry = map[string]*Failpoint{}
)

// New registers a failpoint under a unique name and returns it. It is
// meant for package-level var initialization; a duplicate name is a
// programming error and panics.
func New(name string) *Failpoint {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("fault: duplicate failpoint %q", name))
	}
	fp := &Failpoint{name: name}
	registry[name] = fp
	return fp
}

// Name returns the failpoint's registered name.
func (fp *Failpoint) Name() string { return fp.name }

// Fired returns how many times the failpoint has fired since process
// start. The counter survives Disable, so a test can enable, run, disable
// and then assert the site was actually reached.
func (fp *Failpoint) Fired() int64 { return fp.fired.Load() }

// Fire returns the injected error if the failpoint is enabled and its
// trigger selects this call, nil otherwise. The disabled path is a single
// atomic load.
func (fp *Failpoint) Fire() error {
	st := fp.st.Load()
	if st == nil {
		return nil
	}
	return fp.eval(st)
}

// Cut is Fire for write paths: the caller is about to write n bytes and
// must write at most the returned count. Disabled or not-firing calls
// allow all n bytes with a nil error; a firing call allows min(Torn, n)
// bytes — the torn prefix that reaches the disk — and returns the
// injected error.
func (fp *Failpoint) Cut(n int) (allowed int, err error) {
	st := fp.st.Load()
	if st == nil {
		return n, nil
	}
	if err := fp.eval(st); err != nil {
		allowed = st.cfg.Torn
		if allowed > n {
			allowed = n
		}
		return allowed, err
	}
	return n, nil
}

// eval applies the trigger for one call against an enabled state.
func (fp *Failpoint) eval(st *state) error {
	calls := st.calls.Add(1)
	fire := false
	switch {
	case st.cfg.Prob > 0:
		st.rngMu.Lock()
		fire = st.rng.Float64() < st.cfg.Prob
		st.rngMu.Unlock()
	case st.cfg.Nth > 0:
		if st.cfg.Sticky {
			fire = calls >= st.cfg.Nth
		} else {
			fire = calls == st.cfg.Nth
		}
	default:
		fire = true
	}
	if !fire {
		return nil
	}
	fp.fired.Add(1)
	if st.cfg.Latency > 0 {
		time.Sleep(st.cfg.Latency)
	}
	return st.cfg.Err
}

// enable arms the failpoint with cfg, resetting its call counter.
func (fp *Failpoint) enable(cfg Config) {
	st := &state{cfg: cfg}
	if cfg.Prob > 0 {
		st.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	fp.st.Store(st)
}

// disable returns the failpoint to the zero-cost dormant path.
func (fp *Failpoint) disable() { fp.st.Store(nil) }

// Enable arms the named failpoint with cfg. A Config with a nil Err and
// no Latency is rejected — it would inject nothing.
func Enable(name string, cfg Config) error {
	if cfg.Err == nil && cfg.Latency <= 0 {
		return fmt.Errorf("fault: enable %q: config injects neither an error nor latency", name)
	}
	regMu.Lock()
	fp, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return fmt.Errorf("fault: unknown failpoint %q", name)
	}
	fp.enable(cfg)
	return nil
}

// Disable returns the named failpoint to its dormant state. Unknown names
// are a no-op: disabling is idempotent cleanup.
func Disable(name string) {
	regMu.Lock()
	fp := registry[name]
	regMu.Unlock()
	if fp != nil {
		fp.disable()
	}
}

// DisableAll disarms every registered failpoint (test cleanup).
func DisableAll() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, fp := range registry {
		fp.disable()
	}
}

// Names returns all registered failpoint names, sorted (diagnostics).
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// EnableSpecs parses and applies a spec string (see the package comment
// for the grammar). Entries apply left to right; the first bad entry
// aborts with an error naming it, leaving earlier entries applied.
func EnableSpecs(specs string) error {
	for _, entry := range strings.Split(specs, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rhs, ok := strings.Cut(entry, "=")
		if !ok || name == "" || rhs == "" {
			return fmt.Errorf("fault: bad spec %q: want name=kind[:arg][@trigger]", entry)
		}
		cfg, err := parseSpecRHS(rhs)
		if err != nil {
			return fmt.Errorf("fault: bad spec %q: %w", entry, err)
		}
		if err := Enable(name, cfg); err != nil {
			return err
		}
	}
	return nil
}

// parseSpecRHS parses "kind[:arg][@trigger]" into a Config.
func parseSpecRHS(rhs string) (Config, error) {
	var cfg Config
	kind, trigger, _ := strings.Cut(rhs, "@")
	kind, arg, hasArg := strings.Cut(kind, ":")
	switch kind {
	case "eio":
		cfg.Err = ErrIO
	case "enospc":
		cfg.Err = ErrNoSpace
	case "torn":
		if !hasArg {
			return cfg, fmt.Errorf("torn needs a byte count (torn:<bytes>)")
		}
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			return cfg, fmt.Errorf("bad torn byte count %q", arg)
		}
		cfg.Err = ErrIO
		cfg.Torn = n
		hasArg = false
	case "lat":
		if !hasArg {
			return cfg, fmt.Errorf("lat needs a duration (lat:<duration>)")
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			return cfg, fmt.Errorf("bad latency %q", arg)
		}
		cfg.Latency = d
		hasArg = false
	default:
		return cfg, fmt.Errorf("unknown kind %q (want eio|enospc|torn:<bytes>|lat:<duration>)", kind)
	}
	if hasArg {
		return cfg, fmt.Errorf("kind %q takes no argument", kind)
	}
	if trigger != "" {
		if err := parseTrigger(trigger, &cfg); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// parseTrigger parses "<n>", "<n>+" or "p<f>" into cfg.
func parseTrigger(trigger string, cfg *Config) error {
	if f, ok := strings.CutPrefix(trigger, "p"); ok {
		p, err := strconv.ParseFloat(f, 64)
		if err != nil || p <= 0 || p > 1 {
			return fmt.Errorf("bad probability %q (want 0 < p <= 1)", trigger)
		}
		cfg.Prob = p
		cfg.Seed = 1
		return nil
	}
	nStr, sticky := strings.CutSuffix(trigger, "+")
	n, err := strconv.ParseInt(nStr, 10, 64)
	if err != nil || n < 1 {
		return fmt.Errorf("bad trigger %q (want <n>, <n>+ or p<f>)", trigger)
	}
	cfg.Nth = n
	cfg.Sticky = sticky
	return nil
}

// EnvVar is the environment variable EnableFromEnv reads.
const EnvVar = "FMORE_FAILPOINTS"

// EnableFromEnv applies the FMORE_FAILPOINTS spec string, if set. Binaries
// call it once at startup so chaos harnesses can arm failpoints in child
// processes without any flag plumbing.
func EnableFromEnv() error {
	specs := os.Getenv(EnvVar)
	if specs == "" {
		return nil
	}
	return EnableSpecs(specs)
}

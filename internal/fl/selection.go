// Package fl implements the federated-learning engine of the reproduction:
// FedAvg global aggregation (Eq 3), local mini-batch SGD (Eq 2), and the
// three client-selection strategies compared in the paper's evaluation —
// RandFL (McMahan's random selection), FixFL (a fixed winner set), and FMore
// (the multi-dimensional auction of internal/auction, including ψ-FMore).
package fl

import (
	"errors"
	"fmt"
	"math/rand"

	"fmore/internal/auction"
	"fmore/internal/mec"
)

// Selection is one node chosen for a training round, with its auction
// observables (zero for the non-auction baselines).
type Selection struct {
	Node *mec.EdgeNode
	// Score is the bid's evaluated score S(q, p); 0 for baselines.
	Score float64
	// Payment is the granted payment; 0 for baselines.
	Payment float64
}

// RoundAuction carries the per-round auction telemetry used by the paper's
// figures (score distributions, payments). It is nil for baselines.
type RoundAuction struct {
	// AllScores are the evaluated scores of every bidder this round.
	AllScores []float64
	// TotalPayment is the aggregator's outlay this round.
	TotalPayment float64
}

// Selector chooses the round's participants from the active population.
type Selector interface {
	// Select returns the chosen nodes in preference order. The auction
	// telemetry return is nil for non-auction selectors.
	Select(round int, nodes []*mec.EdgeNode, rng *rand.Rand) ([]Selection, *RoundAuction, error)
	// Name identifies the strategy in experiment output.
	Name() string
}

// ErrNoNodes reports selection over an empty population.
var ErrNoNodes = errors.New("fl: no nodes available for selection")

// RandomSelector implements RandFL: K nodes uniformly at random, the
// selection rule of classic federated learning (McMahan et al.).
type RandomSelector struct {
	K int
}

var _ Selector = RandomSelector{}

// Select implements Selector.
func (r RandomSelector) Select(_ int, nodes []*mec.EdgeNode, rng *rand.Rand) ([]Selection, *RoundAuction, error) {
	if len(nodes) == 0 {
		return nil, nil, ErrNoNodes
	}
	if r.K < 1 {
		return nil, nil, fmt.Errorf("fl: RandomSelector.K must be >= 1, got %d", r.K)
	}
	k := r.K
	if k > len(nodes) {
		k = len(nodes)
	}
	perm := rng.Perm(len(nodes))[:k]
	out := make([]Selection, k)
	for i, idx := range perm {
		out[i] = Selection{Node: nodes[idx]}
	}
	return out, nil, nil
}

// Name implements Selector.
func (r RandomSelector) Name() string { return "RandFL" }

// FixedSelector implements FixFL: the same K node IDs every round,
// frozen at construction.
type FixedSelector struct {
	ids map[int]bool
	k   int
}

var _ Selector = (*FixedSelector)(nil)

// NewFixedSelector freezes a random K-subset of the given population as the
// permanent winner set.
func NewFixedSelector(populationIDs []int, k int, rng *rand.Rand) (*FixedSelector, error) {
	if k < 1 || k > len(populationIDs) {
		return nil, fmt.Errorf("fl: fixed selector needs 1 <= K <= %d, got %d", len(populationIDs), k)
	}
	perm := rng.Perm(len(populationIDs))[:k]
	ids := make(map[int]bool, k)
	for _, i := range perm {
		ids[populationIDs[i]] = true
	}
	return &FixedSelector{ids: ids, k: k}, nil
}

// Select implements Selector.
func (f *FixedSelector) Select(_ int, nodes []*mec.EdgeNode, _ *rand.Rand) ([]Selection, *RoundAuction, error) {
	if len(nodes) == 0 {
		return nil, nil, ErrNoNodes
	}
	out := make([]Selection, 0, f.k)
	for _, n := range nodes {
		if f.ids[n.ID] {
			out = append(out, Selection{Node: n})
		}
	}
	if len(out) == 0 {
		return nil, nil, fmt.Errorf("fl: none of the %d fixed nodes are active", f.k)
	}
	return out, nil, nil
}

// Name implements Selector.
func (f *FixedSelector) Name() string { return "FixFL" }

// BidFunc builds a node's sealed bid for the current round from its offered
// resources and equilibrium strategy.
type BidFunc func(node *mec.EdgeNode) (auction.Bid, error)

// FMoreSelector implements the paper's scheme: each active node submits its
// equilibrium bid, and the auctioneer's winner determination (optionally
// ψ-randomized) picks the round's participants. The auctioneer runs the
// pooled selection core of internal/auction, so per-round selection reuses
// its scratch buffers across the whole figure reproduction.
type FMoreSelector struct {
	auctioneer *auction.Auctioneer
	bid        BidFunc
	name       string
}

var _ Selector = (*FMoreSelector)(nil)

// NewFMoreSelector wires an auctioneer and a bid builder. name defaults to
// "FMore" (use e.g. "psi-FMore(0.5)" for variants).
func NewFMoreSelector(a *auction.Auctioneer, bid BidFunc, name string) (*FMoreSelector, error) {
	if a == nil || bid == nil {
		return nil, errors.New("fl: auctioneer and bid func are required")
	}
	if name == "" {
		name = "FMore"
	}
	return &FMoreSelector{auctioneer: a, bid: bid, name: name}, nil
}

// Select implements Selector.
func (s *FMoreSelector) Select(_ int, nodes []*mec.EdgeNode, _ *rand.Rand) ([]Selection, *RoundAuction, error) {
	if len(nodes) == 0 {
		return nil, nil, ErrNoNodes
	}
	bids := make([]auction.Bid, 0, len(nodes))
	byID := make(map[int]*mec.EdgeNode, len(nodes))
	for _, n := range nodes {
		b, err := s.bid(n)
		if err != nil {
			return nil, nil, fmt.Errorf("fl: bid for node %d: %w", n.ID, err)
		}
		b.NodeID = n.ID
		bids = append(bids, b)
		byID[n.ID] = n
	}
	outcome, err := s.auctioneer.Run(bids)
	if err != nil {
		return nil, nil, fmt.Errorf("fl: auction round: %w", err)
	}
	out := make([]Selection, 0, len(outcome.Winners))
	for _, w := range outcome.Winners {
		node, ok := byID[w.Bid.NodeID]
		if !ok {
			return nil, nil, fmt.Errorf("fl: auction returned unknown node %d", w.Bid.NodeID)
		}
		out = append(out, Selection{Node: node, Score: w.Score, Payment: w.Payment})
	}
	telemetry := &RoundAuction{
		AllScores:    outcome.Scores,
		TotalPayment: outcome.TotalPayment(),
	}
	return out, telemetry, nil
}

// Name implements Selector.
func (s *FMoreSelector) Name() string { return s.name }

// SimulatorBid reproduces the paper simulator's bidding (§V-A): the quality
// vector is (q₁, q₂) = (offered data size / DataScale, category proportion)
// and the payment is the node's Nash equilibrium payment pˢ(θ) under the
// shared strategy. The offered data size caps the ideal quality (a node
// cannot promise samples it does not hold this round).
func SimulatorBid(strategy *auction.Strategy, dataScale float64) BidFunc {
	return func(node *mec.EdgeNode) (auction.Bid, error) {
		if dataScale <= 0 {
			return auction.Bid{}, fmt.Errorf("fl: dataScale must be positive, got %v", dataScale)
		}
		q := []float64{
			float64(node.Offered.DataSize) / dataScale,
			node.Offered.CategoryProportion,
		}
		return auction.Bid{
			Qualities: q,
			Payment:   strategy.Payment(node.Theta),
		}, nil
	}
}

// ClusterBid reproduces the real-deployment bidding (§V-A): the quality
// vector is (computing power, bandwidth, data size), each min–max normalized
// by the supplied ranges, under the additive scoring rule with coefficients
// 0.4/0.3/0.3.
func ClusterBid(strategy *auction.Strategy, cpuMax, bwMax, dataMax float64) BidFunc {
	return func(node *mec.EdgeNode) (auction.Bid, error) {
		if cpuMax <= 0 || bwMax <= 0 || dataMax <= 0 {
			return auction.Bid{}, fmt.Errorf("fl: normalization maxima must be positive (%v, %v, %v)", cpuMax, bwMax, dataMax)
		}
		q := []float64{
			clamp01(node.Offered.CPUCores / cpuMax),
			clamp01(node.Offered.BandwidthMbps / bwMax),
			clamp01(float64(node.Offered.DataSize) / dataMax),
		}
		return auction.Bid{
			Qualities: q,
			Payment:   strategy.Payment(node.Theta),
		}, nil
	}
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}

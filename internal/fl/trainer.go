package fl

import (
	"errors"
	"fmt"
	"math/rand"

	"fmore/internal/mec"
	"fmore/internal/ml"
)

// Config parameterizes one federated training run (Algorithm 1 of the
// paper, with the selection step pluggable so RandFL/FixFL/FMore share the
// same engine).
type Config struct {
	// Global is the shared model; it is trained in place.
	Global ml.Classifier
	// Test is the held-out evaluation set.
	Test []ml.Sample
	// Selector chooses each round's participants.
	Selector Selector
	// Population is the MEC edge population.
	Population *mec.Population
	// Rounds is the number of global rounds T.
	Rounds int
	// LocalEpochs is the number of local passes per round (default 1).
	LocalEpochs int
	// BatchSize is the local mini-batch size (default 16).
	BatchSize int
	// LR is the local learning rate η of Eq (2) (default 0.05).
	LR float64
	// MaxSamplesPerRound caps the per-node local subset per round
	// (0 = no cap beyond the node's offered data size).
	MaxSamplesPerRound int
	// Timing, when set, accumulates simulated wall time per round.
	Timing *mec.TimingModel
	// Seed drives all run-level randomness (selection, subsets, dynamics).
	Seed int64
}

func (c *Config) setDefaults() {
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
}

func (c *Config) validate() error {
	if c.Global == nil {
		return errors.New("fl: Config.Global model is required")
	}
	if len(c.Test) == 0 {
		return errors.New("fl: Config.Test set is required")
	}
	if c.Selector == nil {
		return errors.New("fl: Config.Selector is required")
	}
	if c.Population == nil {
		return errors.New("fl: Config.Population is required")
	}
	if c.Rounds < 1 {
		return fmt.Errorf("fl: Config.Rounds must be >= 1, got %d", c.Rounds)
	}
	if c.LocalEpochs < 1 || c.BatchSize < 1 || c.LR <= 0 {
		return fmt.Errorf("fl: invalid training hyperparameters (epochs=%d batch=%d lr=%v)",
			c.LocalEpochs, c.BatchSize, c.LR)
	}
	return nil
}

// RoundMetrics records one global round.
type RoundMetrics struct {
	Round       int
	Accuracy    float64
	Loss        float64
	SelectedIDs []int
	// WinnerScores/AllScores/TotalPayment are auction telemetry (empty for
	// baselines).
	WinnerScores []float64
	AllScores    []float64
	TotalPayment float64
	// TrainSamples is the total number of local samples consumed.
	TrainSamples int
	// SimTimeSec/CumTimeSec are simulated wall times (0 without Timing).
	SimTimeSec float64
	CumTimeSec float64
}

// History is the full trace of a run.
type History struct {
	Selector string
	Rounds   []RoundMetrics
}

// Final returns the last round's metrics.
func (h *History) Final() RoundMetrics {
	if len(h.Rounds) == 0 {
		return RoundMetrics{}
	}
	return h.Rounds[len(h.Rounds)-1]
}

// RoundsToAccuracy returns the first round index (1-based) whose evaluation
// accuracy reached target, or 0 if never.
func (h *History) RoundsToAccuracy(target float64) int {
	for _, r := range h.Rounds {
		if r.Accuracy >= target {
			return r.Round
		}
	}
	return 0
}

// TimeToAccuracy returns the cumulative simulated seconds at which accuracy
// first reached target, or 0 if never.
func (h *History) TimeToAccuracy(target float64) float64 {
	for _, r := range h.Rounds {
		if r.Accuracy >= target {
			return r.CumTimeSec
		}
	}
	return 0
}

// Accuracies returns the per-round accuracy series.
func (h *History) Accuracies() []float64 {
	out := make([]float64, len(h.Rounds))
	for i, r := range h.Rounds {
		out[i] = r.Accuracy
	}
	return out
}

// Losses returns the per-round evaluation loss series.
func (h *History) Losses() []float64 {
	out := make([]float64, len(h.Rounds))
	for i, r := range h.Rounds {
		out[i] = r.Loss
	}
	return out
}

// Run executes federated training per Algorithm 1: each round the selector
// picks participants, every participant trains the current global model on
// its local data (Eq 2), and the aggregator merges the results weighted by
// local data size (Eq 3).
func Run(cfg Config) (*History, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hist := &History{Selector: cfg.Selector.Name()}
	cumTime := 0.0

	for round := 1; round <= cfg.Rounds; round++ {
		cfg.Population.Step(rng)
		selections, telemetry, err := cfg.Selector.Select(round, cfg.Population.Active(), rng)
		if err != nil {
			return nil, fmt.Errorf("fl: round %d selection: %w", round, err)
		}

		metrics := RoundMetrics{Round: round}
		if telemetry != nil {
			metrics.AllScores = telemetry.AllScores
			metrics.TotalPayment = telemetry.TotalPayment
		}

		if len(selections) > 0 {
			globalParams := cfg.Global.ParamVector()
			agg := make([]float64, len(globalParams))
			totalWeight := 0.0
			var winners []*mec.EdgeNode
			var samplesPer []int

			for _, sel := range selections {
				subset := localSubset(sel.Node, cfg.MaxSamplesPerRound, rng)
				if len(subset) == 0 {
					continue
				}
				local := cfg.Global.Clone()
				if err := local.SetParamVector(globalParams); err != nil {
					return nil, fmt.Errorf("fl: round %d node %d: %w", round, sel.Node.ID, err)
				}
				for e := 0; e < cfg.LocalEpochs; e++ {
					if _, err := local.TrainEpoch(subset, cfg.BatchSize, cfg.LR, rng); err != nil {
						return nil, fmt.Errorf("fl: round %d node %d local training: %w", round, sel.Node.ID, err)
					}
				}
				w := float64(len(subset))
				for j, v := range local.ParamVector() {
					agg[j] += w * v
				}
				totalWeight += w
				metrics.SelectedIDs = append(metrics.SelectedIDs, sel.Node.ID)
				metrics.WinnerScores = append(metrics.WinnerScores, sel.Score)
				metrics.TrainSamples += len(subset)
				winners = append(winners, sel.Node)
				samplesPer = append(samplesPer, len(subset))
			}
			if totalWeight > 0 {
				for j := range agg {
					agg[j] /= totalWeight
				}
				if err := cfg.Global.SetParamVector(agg); err != nil {
					return nil, fmt.Errorf("fl: round %d aggregation: %w", round, err)
				}
			}
			if cfg.Timing != nil && len(winners) > 0 {
				rt, err := cfg.Timing.RoundTime(winners, samplesPer, cfg.LocalEpochs)
				if err != nil {
					return nil, fmt.Errorf("fl: round %d timing: %w", round, err)
				}
				metrics.SimTimeSec = rt
			}
		}
		cumTime += metrics.SimTimeSec
		metrics.CumTimeSec = cumTime

		loss, acc, err := cfg.Global.Evaluate(cfg.Test)
		if err != nil {
			return nil, fmt.Errorf("fl: round %d evaluation: %w", round, err)
		}
		metrics.Loss, metrics.Accuracy = loss, acc
		hist.Rounds = append(hist.Rounds, metrics)
	}
	return hist, nil
}

// localSubset draws the node's per-round training subset: a uniform sample
// of its local data, sized by its offered data volume (and the global cap).
func localSubset(node *mec.EdgeNode, maxSamples int, rng *rand.Rand) []ml.Sample {
	n := node.Offered.DataSize
	if n > len(node.Local) {
		n = len(node.Local)
	}
	if maxSamples > 0 && n > maxSamples {
		n = maxSamples
	}
	if n <= 0 {
		return nil
	}
	if n == len(node.Local) {
		return node.Local
	}
	idx := rng.Perm(len(node.Local))[:n]
	out := make([]ml.Sample, n)
	for i, j := range idx {
		out[i] = node.Local[j]
	}
	return out
}

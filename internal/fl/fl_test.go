package fl

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fmore/internal/auction"
	"fmore/internal/dist"
	"fmore/internal/mec"
	"fmore/internal/ml"
)

// stubClassifier is a deterministic ml.Classifier for aggregation math
// tests: TrainEpoch adds len(samples) to every parameter.
type stubClassifier struct {
	params []float64
}

var _ ml.Classifier = (*stubClassifier)(nil)

func (s *stubClassifier) TrainEpoch(samples []ml.Sample, _ int, _ float64, _ *rand.Rand) (float64, error) {
	for i := range s.params {
		s.params[i] += float64(len(samples))
	}
	return 0.5, nil
}

func (s *stubClassifier) Evaluate(_ []ml.Sample) (float64, float64, error) {
	return 1.0, 0.5, nil
}

func (s *stubClassifier) ParamVector() []float64 {
	return append([]float64(nil), s.params...)
}

func (s *stubClassifier) SetParamVector(v []float64) error {
	if len(v) != len(s.params) {
		return fmt.Errorf("stub: want %d params, got %d", len(s.params), len(v))
	}
	copy(s.params, v)
	return nil
}

func (s *stubClassifier) NumParams() int { return len(s.params) }

func (s *stubClassifier) Clone() ml.Classifier {
	return &stubClassifier{params: append([]float64(nil), s.params...)}
}

// fixedSizePopulation builds nodes with prescribed local data sizes and no
// resource dynamics randomness beyond the given rng.
func fixedSizePopulation(t *testing.T, sizes []int, classes int) *mec.Population {
	t.Helper()
	theta, err := dist.NewUniform(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	part := make([][]ml.Sample, len(sizes))
	for i, sz := range sizes {
		for j := 0; j < sz; j++ {
			part[i] = append(part[i], ml.Sample{Features: []float64{1, 2}, Label: j % classes})
		}
	}
	pop, err := mec.NewPopulation(mec.PopulationConfig{
		N: len(sizes), Theta: theta, Partition: part, Classes: classes,
		DynamicMin: 1, DynamicMax: 1, // freeze dynamics for exact math
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestRandomSelector(t *testing.T) {
	pop := fixedSizePopulation(t, []int{10, 10, 10, 10, 10}, 2)
	rng := rand.New(rand.NewSource(2))
	sel, telemetry, err := RandomSelector{K: 3}.Select(1, pop.Nodes, rng)
	if err != nil {
		t.Fatal(err)
	}
	if telemetry != nil {
		t.Error("RandFL should not produce auction telemetry")
	}
	if len(sel) != 3 {
		t.Fatalf("selected %d, want 3", len(sel))
	}
	seen := map[int]bool{}
	for _, s := range sel {
		if seen[s.Node.ID] {
			t.Error("duplicate selection")
		}
		seen[s.Node.ID] = true
	}
	// K larger than population: select all.
	sel, _, err = RandomSelector{K: 99}.Select(1, pop.Nodes, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 5 {
		t.Errorf("selected %d, want all 5", len(sel))
	}
	if _, _, err := (RandomSelector{K: 0}).Select(1, pop.Nodes, rng); err == nil {
		t.Error("K=0: want error")
	}
	if _, _, err := (RandomSelector{K: 1}).Select(1, nil, rng); err == nil {
		t.Error("no nodes: want error")
	}
}

func TestFixedSelectorIsStable(t *testing.T) {
	pop := fixedSizePopulation(t, []int{10, 10, 10, 10, 10, 10}, 2)
	ids := make([]int, pop.N())
	for i := range ids {
		ids[i] = i
	}
	fs, err := NewFixedSelector(ids, 3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := fs.Select(1, pop.Nodes, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for round := 2; round <= 5; round++ {
		again, _, err := fs.Select(round, pop.Nodes, rand.New(rand.NewSource(int64(round))))
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatalf("selection size changed: %d vs %d", len(again), len(first))
		}
		for i := range again {
			if again[i].Node.ID != first[i].Node.ID {
				t.Fatal("FixFL selection changed across rounds")
			}
		}
	}
	if _, err := NewFixedSelector(ids, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("K=0: want error")
	}
	if _, err := NewFixedSelector(ids, 99, rand.New(rand.NewSource(1))); err == nil {
		t.Error("K>N: want error")
	}
}

// simulatorStrategy solves the paper-simulator equilibrium for tests.
func simulatorStrategy(t *testing.T, n, k int) *auction.Strategy {
	t.Helper()
	rule, err := auction.NewCobbDouglas(25, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := auction.NewLinearCost(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	theta, err := dist.NewUniform(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	strat, err := auction.SolveEquilibrium(auction.EquilibriumConfig{
		Rule: rule, Cost: cost, Theta: theta,
		N: n, K: k,
		QLo: []float64{0, 0}, QHi: []float64{1, 1},
		ThetaGridPoints: 65, QualityGridPoints: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	return strat
}

func TestFMoreSelectorPrefersHighQualityNodes(t *testing.T) {
	// Ten nodes: half with lots of data, half with little.
	sizes := []int{200, 200, 200, 200, 200, 10, 10, 10, 10, 10}
	pop := fixedSizePopulation(t, sizes, 2)
	strat := simulatorStrategy(t, len(sizes), 3)
	rule, err := auction.NewCobbDouglas(25, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	auctioneer, err := auction.NewAuctioneer(auction.Config{Rule: rule, K: 3}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewFMoreSelector(auctioneer, SimulatorBid(strat, 200), "")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Name() != "FMore" {
		t.Errorf("default name = %q, want FMore", sel.Name())
	}
	chosen, telemetry, err := sel.Select(1, pop.Nodes, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if telemetry == nil || len(telemetry.AllScores) != len(sizes) {
		t.Fatal("FMore should report all bidder scores")
	}
	if len(chosen) != 3 {
		t.Fatalf("selected %d, want 3", len(chosen))
	}
	for _, s := range chosen {
		if s.Node.ID >= 5 {
			t.Errorf("FMore selected low-data node %d over high-data rivals", s.Node.ID)
		}
		if s.Payment <= 0 {
			t.Errorf("winner payment %v should be positive", s.Payment)
		}
	}
	if telemetry.TotalPayment <= 0 {
		t.Error("total payment should be positive")
	}
}

func TestNewFMoreSelectorValidation(t *testing.T) {
	if _, err := NewFMoreSelector(nil, nil, ""); err == nil {
		t.Error("nil args: want error")
	}
}

func TestRunAggregationMath(t *testing.T) {
	// Two nodes with 10 and 30 samples; stub training adds len(samples) to
	// every parameter. Weighted FedAvg: g' = (10(g+10) + 30(g+30))/40 =
	// g + (100 + 900)/40 = g + 25.
	pop := fixedSizePopulation(t, []int{10, 30}, 2)
	stub := &stubClassifier{params: []float64{0, 0, 0}}
	hist, err := Run(Config{
		Global:     stub,
		Test:       []ml.Sample{{Features: []float64{1}, Label: 0}},
		Selector:   RandomSelector{K: 2},
		Population: pop,
		Rounds:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range stub.params {
		if math.Abs(v-25) > 1e-9 {
			t.Errorf("param[%d] = %v, want 25 (Eq 3 weighted mean)", i, v)
		}
	}
	if hist.Final().TrainSamples != 40 {
		t.Errorf("TrainSamples = %d, want 40", hist.Final().TrainSamples)
	}
	if len(hist.Final().SelectedIDs) != 2 {
		t.Errorf("SelectedIDs = %v, want both nodes", hist.Final().SelectedIDs)
	}
}

func TestRunMaxSamplesCap(t *testing.T) {
	pop := fixedSizePopulation(t, []int{100}, 2)
	stub := &stubClassifier{params: []float64{0}}
	hist, err := Run(Config{
		Global:             stub,
		Test:               []ml.Sample{{Features: []float64{1}, Label: 0}},
		Selector:           RandomSelector{K: 1},
		Population:         pop,
		Rounds:             1,
		MaxSamplesPerRound: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Final().TrainSamples != 25 {
		t.Errorf("TrainSamples = %d, want capped 25", hist.Final().TrainSamples)
	}
}

func TestRunWithTiming(t *testing.T) {
	pop := fixedSizePopulation(t, []int{50, 50}, 2)
	stub := &stubClassifier{params: []float64{0}}
	tm := mec.DefaultTimingModel(stub.NumParams())
	hist, err := Run(Config{
		Global:     stub,
		Test:       []ml.Sample{{Features: []float64{1}, Label: 0}},
		Selector:   RandomSelector{K: 2},
		Population: pop,
		Rounds:     3,
		Timing:     &tm,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, r := range hist.Rounds {
		if r.SimTimeSec <= 0 {
			t.Errorf("round %d sim time %v, want positive", r.Round, r.SimTimeSec)
		}
		if r.CumTimeSec <= prev {
			t.Errorf("cumulative time not increasing at round %d", r.Round)
		}
		prev = r.CumTimeSec
	}
}

func TestRunValidation(t *testing.T) {
	pop := fixedSizePopulation(t, []int{10}, 2)
	stub := &stubClassifier{params: []float64{0}}
	test := []ml.Sample{{Features: []float64{1}, Label: 0}}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil global", Config{Test: test, Selector: RandomSelector{K: 1}, Population: pop, Rounds: 1}},
		{"no test", Config{Global: stub, Selector: RandomSelector{K: 1}, Population: pop, Rounds: 1}},
		{"nil selector", Config{Global: stub, Test: test, Population: pop, Rounds: 1}},
		{"nil population", Config{Global: stub, Test: test, Selector: RandomSelector{K: 1}, Rounds: 1}},
		{"zero rounds", Config{Global: stub, Test: test, Selector: RandomSelector{K: 1}, Population: pop}},
		{"bad lr", Config{Global: stub, Test: test, Selector: RandomSelector{K: 1}, Population: pop, Rounds: 1, LR: -1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Run(c.cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	mk := func() (*History, error) {
		pop := fixedSizePopulation(t, []int{20, 40, 60}, 2)
		stub := &stubClassifier{params: []float64{0, 0}}
		return Run(Config{
			Global:     stub,
			Test:       []ml.Sample{{Features: []float64{1}, Label: 0}},
			Selector:   RandomSelector{K: 2},
			Population: pop,
			Rounds:     4,
			Seed:       99,
		})
	}
	a, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rounds {
		if len(a.Rounds[i].SelectedIDs) != len(b.Rounds[i].SelectedIDs) {
			t.Fatal("selection sizes diverged across identical seeds")
		}
		for j := range a.Rounds[i].SelectedIDs {
			if a.Rounds[i].SelectedIDs[j] != b.Rounds[i].SelectedIDs[j] {
				t.Fatal("selections diverged across identical seeds")
			}
		}
	}
}

func TestBlacklistedNodesAreNeverSelected(t *testing.T) {
	pop := fixedSizePopulation(t, []int{10, 10, 10}, 2)
	pop.Nodes[0].Blacklisted = true
	stub := &stubClassifier{params: []float64{0}}
	hist, err := Run(Config{
		Global:     stub,
		Test:       []ml.Sample{{Features: []float64{1}, Label: 0}},
		Selector:   RandomSelector{K: 3},
		Population: pop,
		Rounds:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hist.Rounds {
		for _, id := range r.SelectedIDs {
			if id == 0 {
				t.Fatal("blacklisted node was selected")
			}
		}
	}
}

func TestHistoryHelpers(t *testing.T) {
	h := &History{Rounds: []RoundMetrics{
		{Round: 1, Accuracy: 0.3, Loss: 2.0, CumTimeSec: 10},
		{Round: 2, Accuracy: 0.6, Loss: 1.5, CumTimeSec: 20},
		{Round: 3, Accuracy: 0.8, Loss: 1.0, CumTimeSec: 30},
	}}
	if got := h.RoundsToAccuracy(0.6); got != 2 {
		t.Errorf("RoundsToAccuracy(0.6) = %d, want 2", got)
	}
	if got := h.RoundsToAccuracy(0.99); got != 0 {
		t.Errorf("RoundsToAccuracy(0.99) = %d, want 0 (never)", got)
	}
	if got := h.TimeToAccuracy(0.8); got != 30 {
		t.Errorf("TimeToAccuracy(0.8) = %v, want 30", got)
	}
	if accs := h.Accuracies(); len(accs) != 3 || accs[2] != 0.8 {
		t.Errorf("Accuracies = %v", accs)
	}
	if losses := h.Losses(); len(losses) != 3 || losses[0] != 2.0 {
		t.Errorf("Losses = %v", losses)
	}
	if h.Final().Round != 3 {
		t.Errorf("Final().Round = %d, want 3", h.Final().Round)
	}
	empty := &History{}
	if empty.Final().Round != 0 {
		t.Error("empty history Final should be zero value")
	}
}

// TestFMoreBeatsRandFLOnHeterogeneousData is the end-to-end incentive
// result in miniature (Figures 4-7): with heterogeneous node quality,
// auction-based selection converges faster than random selection.
func TestFMoreBeatsRandFLOnHeterogeneousData(t *testing.T) {
	const nodes, k, rounds = 20, 4, 6
	// Strongly heterogeneous sizes: a few rich nodes, many poor ones.
	sizes := make([]int, nodes)
	for i := range sizes {
		if i < 5 {
			sizes[i] = 150
		} else {
			sizes[i] = 8
		}
	}
	// Blob data: build one shared pool, give node i a slice of it.
	rng := rand.New(rand.NewSource(7))
	centers := [][]float64{}
	const classes, dim = 4, 6
	for c := 0; c < classes; c++ {
		ctr := make([]float64, dim)
		for d := range ctr {
			ctr[d] = rng.NormFloat64() * 2.5
		}
		centers = append(centers, ctr)
	}
	mkSample := func(c int) ml.Sample {
		x := make([]float64, dim)
		for d := range x {
			x[d] = centers[c][d] + rng.NormFloat64()*0.6
		}
		return ml.Sample{Features: x, Label: c}
	}
	part := make([][]ml.Sample, nodes)
	for i, sz := range sizes {
		numClasses := classes
		if sz < 20 {
			numClasses = 1 + rng.Intn(2) // poor nodes also lack diversity
		}
		for j := 0; j < sz; j++ {
			part[i] = append(part[i], mkSample(rng.Intn(numClasses)))
		}
	}
	test := make([]ml.Sample, 200)
	for i := range test {
		test[i] = mkSample(i % classes)
	}
	theta, err := dist.NewUniform(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(name string) *History {
		pop, err := mec.NewPopulation(mec.PopulationConfig{
			N: nodes, Theta: theta, Partition: part, Classes: classes,
		}, rand.New(rand.NewSource(8)))
		if err != nil {
			t.Fatal(err)
		}
		global, err := ml.NewMLP(dim, []int{12}, classes, 0.9, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		var selector Selector
		switch name {
		case "fmore":
			strat := simulatorStrategy(t, nodes, k)
			rule, err := auction.NewCobbDouglas(25, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			auctioneer, err := auction.NewAuctioneer(auction.Config{Rule: rule, K: k}, rand.New(rand.NewSource(10)))
			if err != nil {
				t.Fatal(err)
			}
			selector, err = NewFMoreSelector(auctioneer, SimulatorBid(strat, 150), "")
			if err != nil {
				t.Fatal(err)
			}
		default:
			selector = RandomSelector{K: k}
		}
		hist, err := Run(Config{
			Global: global, Test: test, Selector: selector,
			Population: pop, Rounds: rounds, LR: 0.08, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	fmore := runWith("fmore")
	randfl := runWith("rand")
	t.Logf("final accuracy: FMore=%.3f RandFL=%.3f", fmore.Final().Accuracy, randfl.Final().Accuracy)
	if fmore.Final().Accuracy < randfl.Final().Accuracy-0.02 {
		t.Errorf("FMore final accuracy %.3f should not trail RandFL %.3f",
			fmore.Final().Accuracy, randfl.Final().Accuracy)
	}
}

package partition

import (
	"fmt"
	"sync"
	"testing"
)

func twoPartitions() *Map {
	return &Map{Version: 1, Partitions: []Replica{
		{Partition: "p0", URL: "http://127.0.0.1:8780"},
		{Partition: "p1", URL: "http://127.0.0.1:8781"},
	}}
}

// TestOwnerDeterministicAndOrderIndependent: ownership depends only on the
// partition ID set, not on map order or URLs.
func TestOwnerDeterministicAndOrderIndependent(t *testing.T) {
	m := twoPartitions()
	rev := &Map{Version: 1, Partitions: []Replica{m.Partitions[1], m.Partitions[0]}}
	relabeled := &Map{Version: 9, Partitions: []Replica{
		{Partition: "p0", URL: "http://elsewhere:1"},
		{Partition: "p1", URL: "http://elsewhere:2"},
	}}
	for i := 0; i < 512; i++ {
		job := fmt.Sprintf("job-%d", i)
		a, ok := m.Owner(job)
		b, ok2 := rev.Owner(job)
		c, ok3 := relabeled.Owner(job)
		if !ok || !ok2 || !ok3 {
			t.Fatalf("owner lookup failed for %q", job)
		}
		if a.Partition != b.Partition || a.Partition != c.Partition {
			t.Fatalf("owner of %q unstable: %q vs %q vs %q", job, a.Partition, b.Partition, c.Partition)
		}
	}
}

// TestOwnerDistribution: HRW spreads sequential job IDs across partitions
// without gross imbalance (each partition within [25%, 75%] of 2048 jobs
// over 2 partitions is a loose 6σ-style bound).
func TestOwnerDistribution(t *testing.T) {
	m := twoPartitions()
	counts := map[string]int{}
	const n = 2048
	for i := 0; i < n; i++ {
		owner, _ := m.Owner(fmt.Sprintf("job-%d", i))
		counts[owner.Partition]++
	}
	for p, c := range counts {
		if c < n/4 || c > 3*n/4 {
			t.Fatalf("partition %s owns %d/%d jobs — rendezvous hash badly skewed: %v", p, c, n, counts)
		}
	}
	if len(counts) != 2 {
		t.Fatalf("only %d partitions ever own a job: %v", len(counts), counts)
	}
}

// TestOwnerMinimalDisruption: removing one partition moves only the jobs it
// owned; every other job keeps its owner (the rendezvous property that
// makes map changes cheap).
func TestOwnerMinimalDisruption(t *testing.T) {
	big := &Map{Version: 1, Partitions: []Replica{
		{Partition: "p0", URL: "http://h:1"},
		{Partition: "p1", URL: "http://h:2"},
		{Partition: "p2", URL: "http://h:3"},
	}}
	small := &Map{Version: 2, Partitions: big.Partitions[:2]}
	for i := 0; i < 1024; i++ {
		job := fmt.Sprintf("task/%d", i)
		before, _ := big.Owner(job)
		after, _ := small.Owner(job)
		if before.Partition != "p2" && before.Partition != after.Partition {
			t.Fatalf("job %q moved %s -> %s though its partition survived", job, before.Partition, after.Partition)
		}
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	m, err := Parse("p1=http://127.0.0.1:8781, p0=http://127.0.0.1:8780")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Partitions) != 2 || m.Version != 1 {
		t.Fatalf("parsed map = %+v", m)
	}
	if got := m.Spec(); got != "p0=http://127.0.0.1:8780,p1=http://127.0.0.1:8781" {
		t.Fatalf("Spec() = %q", got)
	}
	if _, err := Parse(""); err == nil {
		t.Fatal("empty spec must not parse")
	}
	if _, err := Parse("p0=http://a,p0=http://b"); err == nil {
		t.Fatal("duplicate partition must not parse")
	}
	if _, err := Parse("p0=ftp://a"); err == nil {
		t.Fatal("non-http url must not parse")
	}
	if _, err := Parse("justaurl"); err == nil {
		t.Fatal("entry without '=' must not parse")
	}
}

func TestValidate(t *testing.T) {
	m := twoPartitions()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Map{Version: 1, Partitions: []Replica{{Partition: "a b", URL: "http://h:1"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("partition id with space must not validate")
	}
	if err := (&Map{}).Validate(); err == nil {
		t.Fatal("empty map must not validate")
	}
}

func TestAssignment(t *testing.T) {
	m := twoPartitions()
	a := &Assignment{Local: "p0", Map: NewHandle(m)}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	ownedHere, ownedThere := 0, 0
	for i := 0; i < 256; i++ {
		if a.Owns(fmt.Sprintf("job-%d", i)) {
			ownedHere++
		} else {
			ownedThere++
		}
	}
	if ownedHere == 0 || ownedThere == 0 {
		t.Fatalf("assignment owns %d/%d — partitioning is degenerate", ownedHere, ownedHere+ownedThere)
	}
	// A nil assignment is the unpartitioned posture: owns everything.
	var nilA *Assignment
	if !nilA.Owns("anything") {
		t.Fatal("nil assignment must own every job")
	}
	bad := &Assignment{Local: "p9", Map: NewHandle(m)}
	if err := bad.Validate(); err == nil {
		t.Fatal("assignment to a partition outside the map must not validate")
	}
}

// TestHandleAdvance: Advance is monotone under concurrent refreshers — the
// handle never rolls back to an older version.
func TestHandleAdvance(t *testing.T) {
	h := NewHandle(nil)
	var wg sync.WaitGroup
	for v := int64(1); v <= 32; v++ {
		wg.Add(1)
		go func(v int64) {
			defer wg.Done()
			h.Advance(&Map{Version: v, Partitions: []Replica{{Partition: "p0", URL: "http://h:1"}}})
		}(v)
	}
	wg.Wait()
	if got := h.Load().Version; got != 32 {
		t.Fatalf("handle version = %d, want 32", got)
	}
	if h.Advance(&Map{Version: 31, Partitions: []Replica{{Partition: "p0", URL: "http://h:1"}}}) {
		t.Fatal("Advance accepted an older map")
	}
}

func TestDefault(t *testing.T) {
	m := &Map{Version: 1, Partitions: []Replica{
		{Partition: "pz", URL: "http://h:3"},
		{Partition: "pa", URL: "http://h:1"},
	}}
	d, ok := m.Default()
	if !ok || d.Partition != "pa" {
		t.Fatalf("Default() = %+v ok=%v, want pa", d, ok)
	}
}

// Package partition defines the exchange cluster's partition map: a
// versioned assignment of partitions to replica base URLs with rendezvous
// (highest-random-weight) hashing of job IDs onto partitions.
//
// The map is the single routing truth shared by every layer of a
// partitioned deployment: each exchange replica embeds it to reject jobs it
// does not own (the wrong_partition error carries the owner's URL),
// cmd/fmore-router consults it to forward requests, and pkg/client fetches
// it from GET /v1/cluster/partitions to route per-job calls directly.
//
// Rendezvous hashing was chosen over a ring: with P partitions the owner of
// a job is argmax over partitions of h(partition, job), so adding or
// removing one partition moves only the jobs that hash highest to it —
// 1/P of the keyspace — with no virtual-node bookkeeping. Ownership depends
// only on the partition ID set, never on map order or replica URLs, so a
// URL change (replica moved hosts) re-routes nothing.
//
// The map is static for now and versioned from day one: Version is bumped
// by whoever distributes a new map, Handle swaps it atomically, and every
// consumer treats a higher version as strictly newer. Leader handoff and
// live rebalancing build on exactly this substrate.
package partition

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
)

// Replica is one partition → replica assignment of the cluster map.
type Replica struct {
	// Partition names the partition (e.g. "p0"). IDs are unique within a
	// map and participate in the rendezvous hash, so renaming a partition
	// reassigns its jobs.
	Partition string `json:"partition"`
	// URL is the base URL of the exchange replica serving the partition
	// (scheme://host:port, no /v1 suffix).
	URL string `json:"url"`
}

// Map is the versioned cluster topology: which replica owns which
// partition. A Map is immutable once published — swap a new value through a
// Handle instead of mutating in place.
type Map struct {
	// Version orders maps: consumers replace their copy only with a
	// strictly newer one.
	Version int64 `json:"version"`
	// Partitions is the full assignment. Owner ignores its order.
	Partitions []Replica `json:"partitions"`
}

// Validate checks the map is routable: at least one partition, unique
// non-empty partition IDs, and absolute http(s) base URLs.
func (m *Map) Validate() error {
	if m == nil || len(m.Partitions) == 0 {
		return fmt.Errorf("partition: map has no partitions")
	}
	if m.Version < 1 {
		return fmt.Errorf("partition: map version %d (want >= 1)", m.Version)
	}
	seen := make(map[string]struct{}, len(m.Partitions))
	for _, r := range m.Partitions {
		if r.Partition == "" {
			return fmt.Errorf("partition: empty partition id")
		}
		if strings.ContainsAny(r.Partition, "=, \t\n/") {
			return fmt.Errorf("partition: id %q contains a reserved character", r.Partition)
		}
		if _, dup := seen[r.Partition]; dup {
			return fmt.Errorf("partition: duplicate partition %q", r.Partition)
		}
		seen[r.Partition] = struct{}{}
		u, err := url.Parse(r.URL)
		if err != nil {
			return fmt.Errorf("partition: %s: parsing url: %w", r.Partition, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("partition: %s: url %q must be absolute http(s)", r.Partition, r.URL)
		}
	}
	return nil
}

// Owner returns the replica owning jobID under rendezvous hashing: the
// partition with the highest h(partition, jobID). Deterministic for a fixed
// partition ID set, independent of map order; ties (astronomically
// unlikely) break toward the lexically smaller partition ID so every
// consumer agrees. ok is false only on an empty map.
func (m *Map) Owner(jobID string) (Replica, bool) {
	if m == nil || len(m.Partitions) == 0 {
		return Replica{}, false
	}
	best := 0
	bestHash := rendezvousHash(m.Partitions[0].Partition, jobID)
	for i := 1; i < len(m.Partitions); i++ {
		h := rendezvousHash(m.Partitions[i].Partition, jobID)
		if h > bestHash || (h == bestHash && m.Partitions[i].Partition < m.Partitions[best].Partition) {
			best, bestHash = i, h
		}
	}
	return m.Partitions[best], true
}

// Owns reports whether the named partition owns jobID under this map.
func (m *Map) Owns(partitionID, jobID string) bool {
	owner, ok := m.Owner(jobID)
	return ok && owner.Partition == partitionID
}

// Lookup resolves a partition ID to its replica.
func (m *Map) Lookup(partitionID string) (Replica, bool) {
	if m == nil {
		return Replica{}, false
	}
	for _, r := range m.Partitions {
		if r.Partition == partitionID {
			return r, true
		}
	}
	return Replica{}, false
}

// Default returns the map's default replica — the lexically smallest
// partition ID — the stable target for requests that are not job-scoped
// (listings, registry writes without fan-out, metrics).
func (m *Map) Default() (Replica, bool) {
	if m == nil || len(m.Partitions) == 0 {
		return Replica{}, false
	}
	best := 0
	for i := 1; i < len(m.Partitions); i++ {
		if m.Partitions[i].Partition < m.Partitions[best].Partition {
			best = i
		}
	}
	return m.Partitions[best], true
}

// Spec renders the map's assignment in the flag form Parse accepts
// (partitions in lexical order; the version is carried separately).
func (m *Map) Spec() string {
	parts := make([]string, len(m.Partitions))
	for i, r := range m.Partitions {
		parts[i] = r.Partition + "=" + r.URL
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// rendezvousHash is a 64-bit FNV-1a over partition \x00 job. Hand-rolled
// (no hash/fnv allocation, no []byte conversion) because the exchange runs
// it once per request on the ownership check.
func rendezvousHash(partitionID, jobID string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(partitionID); i++ {
		h ^= uint64(partitionID[i])
		h *= prime64
	}
	h ^= 0 // the separator byte keeps ("ab","c") and ("a","bc") distinct
	h *= prime64
	for i := 0; i < len(jobID); i++ {
		h ^= uint64(jobID[i])
		h *= prime64
	}
	return h
}

// Parse builds a version-1 map from the comma-separated flag form
// "p0=http://host:port,p1=http://host:port". Use ParseVersion when the
// caller carries an explicit map version.
func Parse(spec string) (*Map, error) {
	return ParseVersion(spec, 1)
}

// ParseVersion builds a map with the given version from the flag form.
func ParseVersion(spec string, version int64) (*Map, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("partition: empty map spec")
	}
	m := &Map{Version: version}
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		id, u, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("partition: bad map entry %q (want partition=url)", ent)
		}
		m.Partitions = append(m.Partitions, Replica{Partition: strings.TrimSpace(id), URL: strings.TrimSpace(u)})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Handle is an atomically swappable reference to the current Map. The
// exchange's per-request ownership check is one Handle.Load — the hot path
// never takes a lock or copies the map.
type Handle struct {
	p atomic.Pointer[Map]
}

// NewHandle returns a handle holding m (which may be nil).
func NewHandle(m *Map) *Handle {
	h := &Handle{}
	if m != nil {
		h.p.Store(m)
	}
	return h
}

// Load returns the current map (nil before the first Store).
func (h *Handle) Load() *Map { return h.p.Load() }

// Store publishes m unconditionally.
func (h *Handle) Store(m *Map) { h.p.Store(m) }

// Advance publishes m only if it is strictly newer than the current map,
// and reports whether it was installed. Concurrent refreshers can race
// without ever rolling the handle back to an older version.
func (h *Handle) Advance(m *Map) bool {
	for {
		cur := h.p.Load()
		if cur != nil && m.Version <= cur.Version {
			return false
		}
		if h.p.CompareAndSwap(cur, m) {
			return true
		}
	}
}

// Assignment scopes one exchange replica to its partition of the cluster:
// Local names the partition this replica serves and Map is the live
// cluster map the replica embeds (and serves from /v1/cluster/partitions).
type Assignment struct {
	// Local is the partition this replica owns.
	Local string
	// Map is the shared handle; swapping a newer map through it re-routes
	// without restarting the replica.
	Map *Handle
}

// Validate checks the assignment names a partition present in its map.
func (a *Assignment) Validate() error {
	if a.Local == "" {
		return fmt.Errorf("partition: assignment has no local partition")
	}
	if a.Map == nil {
		return fmt.Errorf("partition: assignment has no map handle")
	}
	m := a.Map.Load()
	if err := m.Validate(); err != nil {
		return err
	}
	if _, ok := m.Lookup(a.Local); !ok {
		return fmt.Errorf("partition: local partition %q is not in the map", a.Local)
	}
	return nil
}

// Owns reports whether this replica owns jobID under the current map. A nil
// assignment — or one whose handle holds no map yet — owns everything (the
// unpartitioned single-process posture).
func (a *Assignment) Owns(jobID string) bool {
	if a == nil {
		return true
	}
	m := a.Map.Load()
	if m == nil {
		return true
	}
	return m.Owns(a.Local, jobID)
}

// Owner resolves jobID's owning replica under the current map.
func (a *Assignment) Owner(jobID string) (Replica, bool) {
	if a == nil {
		return Replica{}, false
	}
	return a.Map.Load().Owner(jobID)
}

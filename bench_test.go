// Benchmark harness: one benchmark per evaluation figure of the paper
// (Figs. 4-13), the headline numbers, and ablations over the design choices
// DESIGN.md calls out. Figures print their full series with -v; headline
// quantities are attached as custom benchmark metrics.
//
//	go test -bench=Figure -benchtime=1x -v .
//	go test -bench=Ablation -benchtime=1x .
package fmore_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"fmore/internal/admission"
	"fmore/internal/analytics"
	"fmore/internal/auction"
	"fmore/internal/dist"
	"fmore/internal/exchange"
	"fmore/internal/partition"
	"fmore/internal/sim"
)

// benchScale is the benchmark preset: paper-shaped population (N=100,
// K=20) with training sized for a CPU-only run.
func benchScale() sim.Scale {
	s := sim.PaperScale()
	s.Rounds = 12
	s.Repeats = 1
	s.TrainSamples = 2500
	s.TestSamples = 400
	return s
}

// lastSeries returns the final Y value of the named series, NaN if absent.
func lastSeries(fr *sim.FigureResult, name string) float64 {
	for _, s := range fr.Series {
		if s.Name == name && len(s.Y) > 0 {
			return s.Y[len(s.Y)-1]
		}
	}
	return math.NaN()
}

func logFigure(b *testing.B, fr *sim.FigureResult) {
	b.Helper()
	var sb strings.Builder
	if err := sim.WriteFigure(&sb, fr); err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + sb.String())
}

func benchAccuracyFigure(b *testing.B, gen func(sim.Scale) (*sim.FigureResult, error)) {
	for i := 0; i < b.N; i++ {
		fr, err := gen(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastSeries(fr, "FMore/accuracy"), "fmore-acc")
		b.ReportMetric(lastSeries(fr, "RandFL/accuracy"), "randfl-acc")
		b.ReportMetric(lastSeries(fr, "FixFL/accuracy"), "fixfl-acc")
		if i == 0 {
			logFigure(b, fr)
		}
	}
}

func BenchmarkFigure4MNISTO(b *testing.B)  { benchAccuracyFigure(b, sim.Figure4) }
func BenchmarkFigure5MNISTF(b *testing.B)  { benchAccuracyFigure(b, sim.Figure5) }
func BenchmarkFigure6CIFAR10(b *testing.B) { benchAccuracyFigure(b, sim.Figure6) }
func BenchmarkFigure7HPNews(b *testing.B)  { benchAccuracyFigure(b, sim.Figure7) }

func BenchmarkFigure8ScoreDistribution(b *testing.B) {
	s := benchScale()
	s.Rounds = 3 // score pooling does not need long training
	for i := 0; i < b.N; i++ {
		fr, err := sim.Figure8(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logFigure(b, fr)
		}
	}
}

func BenchmarkFigure9ImpactN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr, err := sim.Figure9(benchScale(), 60)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastSeries(fr, "payment-vs-N"), "pay-at-N200")
		b.ReportMetric(lastSeries(fr, "score-vs-N"), "score-at-N200")
		if i == 0 {
			logFigure(b, fr)
		}
	}
}

func BenchmarkFigure10ImpactK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr, err := sim.Figure10(benchScale(), 60)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastSeries(fr, "payment-vs-K"), "pay-at-K35")
		b.ReportMetric(lastSeries(fr, "score-vs-K"), "score-at-K35")
		if i == 0 {
			logFigure(b, fr)
		}
	}
}

func BenchmarkFigure11ImpactPsi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr, err := sim.Figure11(benchScale(), 60)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastSeries(fr, "top30-selected"), "top30-at-psi0.9")
		if i == 0 {
			logFigure(b, fr)
		}
	}
}

func BenchmarkFigure12ClusterAccuracy(b *testing.B) {
	cs := sim.QuickClusterScale()
	cs.Nodes, cs.K, cs.Rounds = 12, 4, 5
	for i := 0; i < b.N; i++ {
		fig12, fig13, err := sim.Figures12And13(cs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastSeries(fig12, "FMore/accuracy"), "fmore-acc")
		b.ReportMetric(lastSeries(fig12, "RandFL/accuracy"), "randfl-acc")
		if i == 0 {
			logFigure(b, fig12)
			logFigure(b, fig13)
		}
	}
}

func BenchmarkFigure13ClusterTime(b *testing.B) {
	cs := sim.QuickClusterScale()
	cs.Nodes, cs.K, cs.Rounds = 12, 4, 5
	for i := 0; i < b.N; i++ {
		_, fig13, err := sim.Figures12And13(cs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastSeries(fig13, "FMore/cum-time"), "fmore-total-s")
		b.ReportMetric(lastSeries(fig13, "RandFL/cum-time"), "randfl-total-s")
		if i == 0 {
			logFigure(b, fig13)
		}
	}
}

func BenchmarkHeadlineNumbers(b *testing.B) {
	s := benchScale()
	s.Rounds = 6
	cs := sim.QuickClusterScale()
	cs.Nodes, cs.K, cs.Rounds = 10, 3, 4
	for i := 0; i < b.N; i++ {
		h, err := sim.HeadlineNumbers(s, cs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(h.MeanRoundReductionPct, "round-reduction-%")
		b.ReportMetric(h.LSTMAccuracyGainPct, "lstm-acc-gain-%")
		b.ReportMetric(h.ClusterAccuracyGainPct, "cluster-acc-gain-%")
		b.ReportMetric(h.ClusterTimeReductionPct, "cluster-time-red-%")
		if i == 0 {
			var sb strings.Builder
			if err := h.Write(&sb); err != nil {
				b.Fatal(err)
			}
			b.Log("\n" + sb.String())
		}
	}
}

// ---------------------------------------------------------------------------
// Exchange hot path: the concurrent multi-job auction service.
// ---------------------------------------------------------------------------

// benchmarkExchangeRunAuction measures one full exchange round across `jobs`
// concurrent jobs with 64 bidders each: submit all bids, close, collect the
// outcome. ns/op is the wall time of the whole multi-job round. With
// durable set, the exchange runs on a write-ahead outcome log in a temp
// dir — the overhead measured is the record encode plus a channel send,
// since fsyncs happen on a dedicated writer goroutine off the close path.
func benchmarkExchangeRunAuction(b *testing.B, jobs int, durable, tapped bool) {
	const bidders = 64
	var (
		ex  *exchange.Exchange
		err error
	)
	if durable {
		// The size-triggered WAL compaction is disabled so the durable rows
		// stay comparable across PRs (they isolate the append path); the
		// compaction cost has its own benchmark below.
		ex, err = exchange.Open(b.TempDir(), exchange.Options{SnapshotBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
	} else {
		ex = exchange.New(exchange.Options{})
	}
	defer ex.Close()
	if tapped {
		// The tapped variant attaches the analytics aggregator to the
		// firehose, so every bid and close also flows through the event tap
		// and the rollup sink. The allocs/op must not move against the
		// untapped row: the tap is plain atomic stores on the hot path.
		agg := analytics.New(analytics.Options{})
		defer ex.Firehose().Attach(agg)()
	}

	rule, err := auction.NewAdditive(0.6, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	jobHandles := make([]*exchange.Job, jobs)
	bids := make([][]auction.Bid, jobs)
	for j := 0; j < jobs; j++ {
		job, err := ex.CreateJob(exchange.JobSpec{
			ID:      fmt.Sprintf("bench-%d", j),
			Auction: auction.Config{Rule: rule, K: 8},
			Seed:    int64(j),
		})
		if err != nil {
			b.Fatal(err)
		}
		jobHandles[j] = job
		rng := rand.New(rand.NewSource(int64(j)))
		bids[j] = make([]auction.Bid, bidders)
		for i := range bids[j] {
			bids[j][i] = auction.Bid{
				NodeID:    i,
				Qualities: []float64{rng.Float64(), rng.Float64()},
				Payment:   0.05 + 0.25*rng.Float64(),
			}
		}
	}

	// One untimed warm-up round settles first-contact state (job interning
	// in the firehose, per-job/per-node series in the aggregator, pooled
	// buffers), so the timed loop measures the steady-state close.
	for j := 0; j < jobs; j++ {
		for _, bid := range bids[j] {
			if _, err := ex.SubmitBid(jobHandles[j].ID(), bid); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := jobHandles[j].CloseRound(); err != nil {
			b.Fatal(err)
		}
	}
	if tapped {
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := ex.Firehose().Drain(drainCtx); err != nil {
			b.Fatal(err)
		}
		cancel()
	}

	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var wg sync.WaitGroup
		for j := 0; j < jobs; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				job := jobHandles[j]
				for _, bid := range bids[j] {
					if _, err := ex.SubmitBid(job.ID(), bid); err != nil {
						b.Error(err)
						return
					}
				}
				// Job.CloseRound is the pooled zero-copy close — the hot
				// path this benchmark tracks; the outcome is consumed
				// immediately (Exchange.CloseRound clones for retention).
				if _, err := job.CloseRound(); err != nil {
					b.Error(err)
				}
			}(j)
		}
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(jobs*bidders), "bids/round")
	// GOMAXPROCS rides along on every row: -cpu multiplies the stripe
	// count and scheduler pressure, so rows are only comparable at the
	// same value (BENCH.md records it with each number).
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	snap := ex.Metrics()
	b.ReportMetric(snap.RoundLatencyP99Ms, "p99-close-ms")
}

func BenchmarkExchange_RunAuction_1Jobs(b *testing.B) {
	benchmarkExchangeRunAuction(b, 1, false, false)
}

func BenchmarkExchange_RunAuction_8Jobs(b *testing.B) {
	benchmarkExchangeRunAuction(b, 8, false, false)
}

func BenchmarkExchange_RunAuction_64Jobs(b *testing.B) {
	benchmarkExchangeRunAuction(b, 64, false, false)
}

// The tapped variant runs the 8-job workload with the observability stack
// live — firehose recording plus the analytics aggregator consuming it —
// and is compared against the untapped row to hold the tap's round-close
// overhead at zero allocations. Trajectory: BENCH.md.
func BenchmarkExchange_RunAuction_8Jobs_Tapped(b *testing.B) {
	benchmarkExchangeRunAuction(b, 8, false, true)
}

// The durable variants run the same workload on a WAL-backed exchange;
// comparing against the in-memory numbers isolates the persistence cost on
// the round-close path.
func BenchmarkExchange_RunAuction_8Jobs_Durable(b *testing.B) {
	benchmarkExchangeRunAuction(b, 8, true, false)
}

func BenchmarkExchange_RunAuction_64Jobs_Durable(b *testing.B) {
	benchmarkExchangeRunAuction(b, 64, true, false)
}

// BenchmarkExchange_WALCompaction measures one snapshot + rotation on a
// populated durable exchange (8 jobs with full KeepOutcomes=32 histories,
// 64 nodes): the stop-the-world capture, the snapshot encode + fsync, the
// rotation and the old-segment deletion. This is the cost a live exchange
// pays per size- or interval-triggered compaction.
func BenchmarkExchange_WALCompaction(b *testing.B) {
	const jobs, bidders, rounds = 8, 64, 32
	ex, err := exchange.Open(b.TempDir(), exchange.Options{SnapshotBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer ex.Close()
	rule, err := auction.NewAdditive(0.6, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	for j := 0; j < jobs; j++ {
		job, err := ex.CreateJob(exchange.JobSpec{
			ID:           fmt.Sprintf("compact-%d", j),
			Auction:      auction.Config{Rule: rule, K: 8},
			Seed:         int64(j),
			KeepOutcomes: rounds,
		})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(j)))
		for r := 0; r < rounds; r++ {
			for i := 0; i < bidders; i++ {
				bid := auction.Bid{
					NodeID:    i,
					Qualities: []float64{rng.Float64(), rng.Float64()},
					Payment:   0.05 + 0.25*rng.Float64(),
				}
				if _, err := ex.SubmitBid(job.ID(), bid); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := ex.CloseRound(job.ID()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := ex.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Bid intake under contention: many bidders hammering one job concurrently.
// ---------------------------------------------------------------------------

// submitBenchBidders is the concurrent-bidder count of the contended-submit
// benchmark (the ISSUE's acceptance bar is measured at 64).
const submitBenchBidders = 64

// submitBenchBidsPerBidder is how many distinct-node bids each bidder pushes
// per round, so one measured round is 64×32 = 2048 contended submits plus
// one close (which re-arms the per-round dedup state).
const submitBenchBidsPerBidder = 32

// benchmarkSubmitBids measures contended bid ingestion: 64 persistent bidder
// goroutines all submitting to ONE job's collecting round, with a round
// close per iteration to reset dedup. ns/op is one full 2048-bid contended
// round; the bids/sec metric is the headline ingestion throughput. The
// workers are spawned once and released per iteration through a phase
// barrier, so goroutine creation is off the measured path.
func benchmarkSubmitBids(b *testing.B, submit func(jobID string, bid auction.Bid) error, closeRound func(jobID string) error, jobID string) {
	bids := make([][]auction.Bid, submitBenchBidders)
	for g := range bids {
		rng := rand.New(rand.NewSource(int64(g)))
		bids[g] = make([]auction.Bid, submitBenchBidsPerBidder)
		for i := range bids[g] {
			bids[g][i] = auction.Bid{
				NodeID:    g*submitBenchBidsPerBidder + i,
				Qualities: []float64{rng.Float64(), rng.Float64()},
				Payment:   0.05 + 0.25*rng.Float64(),
			}
		}
	}

	starts := make([]chan struct{}, submitBenchBidders)
	var phase sync.WaitGroup
	var workers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < submitBenchBidders; g++ {
		starts[g] = make(chan struct{}, 1)
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for {
				select {
				case <-stop:
					return
				case <-starts[g]:
				}
				for _, bid := range bids[g] {
					if err := submit(jobID, bid); err != nil {
						b.Error(err)
						break
					}
				}
				phase.Done()
			}
		}(g)
	}

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		phase.Add(submitBenchBidders)
		for g := 0; g < submitBenchBidders; g++ {
			starts[g] <- struct{}{}
		}
		phase.Wait()
		if err := closeRound(jobID); err != nil {
			b.Error(err)
		}
	}
	b.StopTimer()
	close(stop)
	workers.Wait()
	totalBids := float64(submitBenchBidders * submitBenchBidsPerBidder)
	b.ReportMetric(totalBids*float64(b.N)/b.Elapsed().Seconds(), "bids/sec")
	// See benchmarkExchangeRunAuction: rows only compare at equal -cpu.
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkExchange_SubmitBids_Parallel is the real exchange path: 64
// concurrent bidders against one hosted job (registry policy, dedup, intake
// buffering included). Tracked in BENCH.md; CI smokes one iteration.
func BenchmarkExchange_SubmitBids_Parallel(b *testing.B) {
	ex := exchange.New(exchange.Options{})
	defer ex.Close()
	rule, err := auction.NewAdditive(0.6, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	job, err := ex.CreateJob(exchange.JobSpec{
		ID:      "contended",
		Auction: auction.Config{Rule: rule, K: 8},
		Seed:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchmarkSubmitBids(b,
		func(jobID string, bid auction.Bid) error {
			_, err := ex.SubmitBid(jobID, bid)
			return err
		},
		func(string) error {
			_, err := job.CloseRound() // pooled close; result discarded
			return err
		},
		job.ID())
}

// BenchmarkExchange_SubmitBids_Parallel_Admitted is the same contended
// workload with the admission controller installed in its production shape
// — a global bid-rate ceiling (set far above the offered load, so every
// bid is admitted) plus the HTTP-level in-flight cap — measuring what
// overload protection costs the hot path when it is NOT shedding. The
// acceptance bar is parity with the unadmitted benchmark above: within 5%
// ns/op and the same 0 allocs/op. The admit is one cached-clock load plus
// one GCRA CAS; per-node/per-job levels left unlimited resolve to nil
// buckets and cost nothing (each enabled extra level adds one more CAS per
// bid — the full three-level hierarchy is measured in BENCH.md). Tracked
// in BENCH.md; CI smokes one iteration.
func BenchmarkExchange_SubmitBids_Parallel_Admitted(b *testing.B) {
	ex := exchange.New(exchange.Options{Admission: admission.NewController(admission.Config{
		GlobalRate: 1e12, GlobalBurst: 1 << 30,
		MaxInflight: 1 << 20,
	})})
	defer ex.Close()
	rule, err := auction.NewAdditive(0.6, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	job, err := ex.CreateJob(exchange.JobSpec{
		ID:      "contended-admitted",
		Auction: auction.Config{Rule: rule, K: 8},
		Seed:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchmarkSubmitBids(b,
		func(jobID string, bid auction.Bid) error {
			_, err := ex.SubmitBid(jobID, bid)
			return err
		},
		func(string) error {
			_, err := job.CloseRound()
			return err
		},
		job.ID())
}

// BenchmarkExchange_SubmitBids_Parallel_Partitioned is the same contended
// workload against a partition-scoped replica: the job is locally owned, so
// every submit resolves the hosted job and the partition map is never
// consulted (the ownership check rides the job-lookup miss path only).
// Tracked in BENCH.md as the per-replica throughput row — the acceptance
// bar is parity with the unpartitioned benchmark above.
func BenchmarkExchange_SubmitBids_Parallel_Partitioned(b *testing.B) {
	m, err := partition.Parse("p0=http://127.0.0.1:18780,p1=http://127.0.0.1:18781")
	if err != nil {
		b.Fatal(err)
	}
	assign := &partition.Assignment{Local: "p0", Map: partition.NewHandle(m)}
	ex := exchange.New(exchange.Options{Partition: assign})
	defer ex.Close()
	rule, err := auction.NewAdditive(0.6, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	id := ""
	for i := 0; i < 4096 && id == ""; i++ {
		if cand := fmt.Sprintf("contended-%d", i); m.Owns("p0", cand) {
			id = cand
		}
	}
	if id == "" {
		b.Fatal("no locally owned job ID candidate")
	}
	job, err := ex.CreateJob(exchange.JobSpec{
		ID:      id,
		Auction: auction.Config{Rule: rule, K: 8},
		Seed:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchmarkSubmitBids(b,
		func(jobID string, bid auction.Bid) error {
			_, err := ex.SubmitBid(jobID, bid)
			return err
		},
		func(string) error {
			_, err := job.CloseRound()
			return err
		},
		job.ID())
}

// BenchmarkExchange_SubmitBids_MutexBaseline is a frozen miniature of the
// pre-PR 5 intake: one mutex guarding the bid buffer and the per-round dedup
// set, exactly what Job.submit did before the striped intake shards. It runs
// on the same worker harness so the two benchmarks differ only in the
// ingestion structure; the ≥2× acceptance bar of the striped intake is
// measured against this.
func BenchmarkExchange_SubmitBids_MutexBaseline(b *testing.B) {
	rule, err := auction.NewAdditive(0.6, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	var (
		mu   sync.Mutex
		seen = make(map[int]struct{})
		buf  []auction.Bid
	)
	benchmarkSubmitBids(b,
		func(_ string, bid auction.Bid) error {
			if err := bid.Validate(rule.Dims()); err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			if _, dup := seen[bid.NodeID]; dup {
				return fmt.Errorf("duplicate bid from node %d", bid.NodeID)
			}
			seen[bid.NodeID] = struct{}{}
			buf = append(buf, bid)
			return nil
		},
		func(string) error {
			mu.Lock()
			defer mu.Unlock()
			buf = buf[:0]
			clear(seen)
			return nil
		},
		"baseline")
}

// ---------------------------------------------------------------------------
// Winner-determination core: partial top-K selection vs the full sort.
// ---------------------------------------------------------------------------

// selectBenchSlate builds the N-bidder slate shared by the selection
// benchmarks.
func selectBenchSlate(b *testing.B, n int) (auction.Additive, []auction.Bid) {
	b.Helper()
	rule, err := auction.NewAdditive(0.6, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	bids := make([]auction.Bid, n)
	for i := range bids {
		bids[i] = auction.Bid{
			NodeID:    i,
			Qualities: []float64{rng.Float64(), rng.Float64()},
			Payment:   0.05 + 0.25*rng.Float64(),
		}
	}
	return rule, bids
}

// benchmarkSelect measures one winner determination on a pooled
// auction.Selector — the exchange's per-job hot path. Steady state must be
// allocation-free (run with -benchmem).
func benchmarkSelect(b *testing.B, n, k int) {
	rule, bids := selectBenchSlate(b, n)
	req := auction.SelectionRequest{Rule: rule, Bids: bids, K: k, Payment: auction.SecondPrice}
	var sel auction.Selector
	rng := rand.New(rand.NewSource(1))
	if _, err := sel.Select(req, rng); err != nil { // warm the pooled buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Select(req, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelect_N1024K8(b *testing.B)  { benchmarkSelect(b, 1024, 8) }
func BenchmarkSelect_N4096K16(b *testing.B) { benchmarkSelect(b, 4096, 16) }

// benchmarkSelectFullSort is the pre-refactor baseline kept for comparison:
// score everything, sort.SliceStable the whole slate, take the top K, with
// fresh allocations per call — what DetermineWinners did before the partial
// top-K core. The ≥2× acceptance bar of the refactor is measured against
// this.
func benchmarkSelectFullSort(b *testing.B, n, k int) {
	rule, bids := selectBenchSlate(b, n)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		type scored struct {
			bid   auction.Bid
			score float64
			pos   int
		}
		ranked := make([]scored, 0, len(bids))
		scores := make([]float64, len(bids))
		tiebreak := make([]float64, len(bids))
		for j, bd := range bids {
			s, err := auction.Score(rule, bd.Qualities, bd.Payment)
			if err != nil {
				b.Fatal(err)
			}
			scores[j] = s
			tiebreak[j] = rng.Float64()
			ranked = append(ranked, scored{bid: bd, score: s, pos: j})
		}
		sort.SliceStable(ranked, func(a, c int) bool {
			if ranked[a].score != ranked[c].score {
				return ranked[a].score > ranked[c].score
			}
			return tiebreak[ranked[a].pos] > tiebreak[ranked[c].pos]
		})
		limit := k
		if limit > len(ranked) {
			limit = len(ranked)
		}
		winners := make([]auction.Winner, 0, limit)
		for _, sb := range ranked[:limit] {
			if sb.score < 0 {
				break
			}
			winners = append(winners, auction.Winner{Bid: sb.bid, Score: sb.score, Payment: sb.bid.Payment})
		}
		if len(winners) != k {
			b.Fatalf("want %d winners, got %d", k, len(winners))
		}
	}
}

func BenchmarkSelect_FullSortBaseline_N1024K8(b *testing.B)  { benchmarkSelectFullSort(b, 1024, 8) }
func BenchmarkSelect_FullSortBaseline_N4096K16(b *testing.B) { benchmarkSelectFullSort(b, 4096, 16) }

// ---------------------------------------------------------------------------
// Ablations over the design choices DESIGN.md §5 calls out.
// ---------------------------------------------------------------------------

func ablationGame(b *testing.B, solver auction.SolverKind, model auction.WinProbModel) auction.EquilibriumConfig {
	b.Helper()
	rule, err := auction.NewCobbDouglas(2, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	cost, err := auction.NewLinearCost(1)
	if err != nil {
		b.Fatal(err)
	}
	theta, err := dist.NewUniform(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	return auction.EquilibriumConfig{
		Rule: rule, Cost: cost, Theta: theta,
		N: 100, K: 20,
		QLo: []float64{0}, QHi: []float64{1.5},
		Solver: solver, WinProb: model,
	}
}

// BenchmarkAblationWinProbModels measures how much the paper's Eq (9)
// deviates from the exact order-statistic win probability in equilibrium
// payments.
func BenchmarkAblationWinProbModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paper, err := auction.SolveEquilibrium(ablationGame(b, auction.SolverQuadrature, auction.WinProbPaper))
		if err != nil {
			b.Fatal(err)
		}
		exact, err := auction.SolveEquilibrium(ablationGame(b, auction.SolverQuadrature, auction.WinProbExact))
		if err != nil {
			b.Fatal(err)
		}
		maxRel := 0.0
		for _, th := range []float64{1.05, 1.2, 1.4, 1.6, 1.8} {
			pp, pe := paper.Payment(th), exact.Payment(th)
			if rel := math.Abs(pp-pe) / math.Max(pe, 1e-9); rel > maxRel {
				maxRel = rel
			}
		}
		b.ReportMetric(100*maxRel, "max-payment-dev-%")
	}
}

// BenchmarkAblationSolverEuler/RK4/Quadrature time the three payment
// solvers on the same game (the paper prescribes Euler).
func BenchmarkAblationSolverEuler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := auction.SolveEquilibrium(ablationGame(b, auction.SolverEuler, auction.WinProbPaper)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSolverRK4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := auction.SolveEquilibrium(ablationGame(b, auction.SolverRK4, auction.WinProbPaper)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSolverQuadrature(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := auction.SolveEquilibrium(ablationGame(b, auction.SolverQuadrature, auction.WinProbPaper)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPaymentRules compares aggregator outlay under first- vs
// second-price payment on identical bid pools.
func BenchmarkAblationPaymentRules(b *testing.B) {
	rule, err := auction.NewAdditive(0.5, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	bids := make([]auction.Bid, 100)
	for i := range bids {
		bids[i] = auction.Bid{
			NodeID:    i,
			Qualities: []float64{rng.Float64(), rng.Float64()},
			Payment:   0.05 + 0.3*rng.Float64(),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		first, err := auction.DetermineWinners(rule, bids, 20, auction.FirstPrice, rand.New(rand.NewSource(2)))
		if err != nil {
			b.Fatal(err)
		}
		second, err := auction.DetermineWinners(rule, bids, 20, auction.SecondPrice, rand.New(rand.NewSource(2)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(first.TotalPayment(), "first-price-outlay")
		b.ReportMetric(second.TotalPayment(), "second-price-outlay")
	}
}

// BenchmarkAblationScoringRules measures winner-set overlap between the
// three scoring families on identical bid pools: how much the rule choice
// alone changes who gets selected.
func BenchmarkAblationScoringRules(b *testing.B) {
	add, err := auction.NewAdditive(0.5, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	leo, err := auction.NewLeontief(0.5, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	cd, err := auction.NewCobbDouglas(1, 0.5, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	bids := make([]auction.Bid, 100)
	for i := range bids {
		bids[i] = auction.Bid{
			NodeID:    i,
			Qualities: []float64{rng.Float64(), rng.Float64()},
			Payment:   0.02 + 0.1*rng.Float64(),
		}
	}
	winnersOf := func(r auction.ScoringRule) map[int]bool {
		out, err := auction.DetermineWinners(r, bids, 20, auction.FirstPrice, rand.New(rand.NewSource(4)))
		if err != nil {
			b.Fatal(err)
		}
		set := map[int]bool{}
		for _, id := range out.WinnerIDs() {
			set[id] = true
		}
		return set
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wAdd, wLeo, wCD := winnersOf(add), winnersOf(leo), winnersOf(cd)
		overlap := func(a, bset map[int]bool) float64 {
			n := 0
			for id := range a {
				if bset[id] {
					n++
				}
			}
			return float64(n) / float64(len(a))
		}
		b.ReportMetric(overlap(wAdd, wLeo), "additive-leontief-overlap")
		b.ReportMetric(overlap(wAdd, wCD), "additive-cobbdouglas-overlap")
	}
}

// BenchmarkAblationBudget exercises the budget-constrained winner
// determination (the paper's named future-work extension): how the winner
// count and outlay respond as the aggregator budget tightens.
func BenchmarkAblationBudget(b *testing.B) {
	rule, err := auction.NewAdditive(0.5, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	bids := make([]auction.Bid, 100)
	for i := range bids {
		bids[i] = auction.Bid{
			NodeID:    i,
			Qualities: []float64{rng.Float64(), rng.Float64()},
			Payment:   0.05 + 0.25*rng.Float64(),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tight, err := auction.DetermineWinnersBudget(rule, bids, 20, 1.0, auction.FirstPrice, rand.New(rand.NewSource(8)))
		if err != nil {
			b.Fatal(err)
		}
		loose, err := auction.DetermineWinnersBudget(rule, bids, 20, 10.0, auction.FirstPrice, rand.New(rand.NewSource(8)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(tight.Winners)), "winners-budget-1")
		b.ReportMetric(float64(len(loose.Winners)), "winners-budget-10")
		b.ReportMetric(tight.TotalPayment(), "outlay-budget-1")
	}
}

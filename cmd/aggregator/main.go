// Command aggregator runs a standalone FMore aggregator server: it listens
// for edge-node registrations (cmd/edgenode) and drives the auction-based
// federated training of Algorithm 1 over real TCP.
//
// The aggregator and the edge nodes agree on the task through the -task and
// -seed flags: the aggregator generates the held-out test set, each node
// generates its private local shard.
//
// Usage:
//
//	aggregator -addr :9000 -nodes 4 -k 2 -rounds 10 -task mnist-o
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on the DefaultServeMux served at -pprof-addr
	"os"

	"fmore/internal/auction"
	"fmore/internal/data"
	"fmore/internal/ml"
	"fmore/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aggregator:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aggregator", flag.ContinueOnError)
	addr := fs.String("addr", ":9000", "listen address")
	nodes := fs.Int("nodes", 4, "number of edge nodes to wait for")
	k := fs.Int("k", 2, "winners per round")
	rounds := fs.Int("rounds", 10, "federated rounds")
	taskName := fs.String("task", "mnist-o", "workload: mnist-o, mnist-f, cifar-10, hpnews")
	testN := fs.Int("test", 300, "test set size")
	seed := fs.Int64("seed", 1, "shared experiment seed")
	random := fs.Bool("random", false, "RandFL baseline selection")
	psi := fs.Float64("psi", 1, "psi-FMore admission probability")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "aggregator: pprof:", err)
			}
		}()
	}

	task, err := parseTask(*taskName)
	if err != nil {
		return err
	}
	// The aggregator only needs the test split; the minimal train split is
	// discarded. Edge nodes derive their private shards from node-specific
	// seeds, so train and test data stay distinct.
	corpus, err := data.GenerateTask(task, data.NumClasses, *testN, *seed)
	if err != nil {
		return err
	}
	global, err := buildModel(task, rand.New(rand.NewSource(*seed+13)))
	if err != nil {
		return err
	}
	rule, err := auction.NewAdditive(0.4, 0.3, 0.3)
	if err != nil {
		return err
	}
	listener, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer listener.Close() //nolint:errcheck // process exit follows

	fmt.Printf("aggregator listening on %s, waiting for %d nodes\n", listener.Addr(), *nodes)
	server, err := transport.NewServer(transport.ServerConfig{
		Listener:        listener,
		ExpectNodes:     *nodes,
		Rounds:          *rounds,
		K:               *k,
		Rule:            rule,
		Psi:             *psi,
		Global:          global,
		Test:            corpus.Test,
		Seed:            *seed,
		RandomSelection: *random,
	})
	if err != nil {
		return err
	}
	report, err := server.Run()
	if err != nil {
		return err
	}
	for _, r := range report.Rounds {
		fmt.Printf("round %2d: accuracy %.4f loss %.4f winners %v payment %.3f (%.2fs)\n",
			r.Round, r.Accuracy, r.Loss, r.SelectedIDs, r.TotalPayment, r.WallTimeSec)
	}
	if len(report.Blacklisted) > 0 {
		fmt.Printf("blacklisted: %v\n", report.Blacklisted)
	}
	fmt.Printf("final accuracy: %.4f\n", report.FinalAccuracy)
	return nil
}

func parseTask(s string) (data.TaskKind, error) {
	switch s {
	case "mnist-o":
		return data.MNISTO, nil
	case "mnist-f":
		return data.MNISTF, nil
	case "cifar-10", "cifar":
		return data.CIFAR10, nil
	case "hpnews":
		return data.HPNews, nil
	default:
		return 0, fmt.Errorf("unknown task %q", s)
	}
}

func buildModel(kind data.TaskKind, rng *rand.Rand) (ml.Classifier, error) {
	switch kind {
	case data.MNISTO, data.MNISTF:
		return ml.NewImageCNN(ml.MNISTCNNConfig(data.ImageSize, data.ImageSize), rng)
	case data.CIFAR10:
		return ml.NewImageCNN(ml.CIFARCNNConfig(data.ImageSize, data.ImageSize), rng)
	case data.HPNews:
		return ml.NewLSTMClassifier(ml.LSTMConfig{
			Vocab: data.TextVocab, Embed: 10, Hidden: 20,
			Classes: data.NumClasses, Momentum: 0.9,
		}, rng)
	default:
		return nil, fmt.Errorf("unknown task kind %v", kind)
	}
}

// Command fmore-cluster runs the paper's real-deployment experiment (§V-C)
// in-process: one aggregator plus N edge nodes over loopback TCP, with the
// deterministic timing model reporting Fig. 13-style durations.
//
// Usage:
//
//	fmore-cluster -nodes 31 -k 8 -rounds 20
//	fmore-cluster -nodes 31 -k 8 -rounds 20 -random   (RandFL baseline)
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"fmore/internal/cluster"
	"fmore/internal/data"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fmore-cluster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fmore-cluster", flag.ContinueOnError)
	nodes := fs.Int("nodes", 31, "edge node count (paper: 31)")
	k := fs.Int("k", 8, "winners per round")
	rounds := fs.Int("rounds", 10, "federated rounds")
	random := fs.Bool("random", false, "RandFL baseline instead of the auction")
	useExchange := fs.Bool("exchange", false, "delegate winner determination to an internal/exchange job")
	psi := fs.Float64("psi", 1, "psi-FMore admission probability")
	seed := fs.Int64("seed", 1, "seed")
	trainN := fs.Int("train", 2000, "generated training corpus size")
	testN := fs.Int("test", 400, "generated test set size")
	if err := fs.Parse(args); err != nil {
		return err
	}

	res, err := cluster.Run(cluster.Config{
		Nodes: *nodes, K: *k, Rounds: *rounds,
		Task:         data.CIFAR10,
		TrainSamples: *trainN, TestSamples: *testN,
		RandomSelection: *random,
		UseExchange:     *useExchange,
		Psi:             *psi,
		Seed:            *seed,
		BreachNodeID:    -1,
		DropNodeID:      -1,
	})
	if err != nil {
		return err
	}

	mode := "FMore"
	if *random {
		mode = "RandFL"
	} else if *useExchange {
		mode = "FMore-via-exchange"
	}
	fmt.Printf("cluster run: %d nodes, K=%d, %d rounds, %s\n", *nodes, *k, *rounds, mode)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "round\taccuracy\tloss\twinners\tpayment\tsim-time(s)\tcum-sim(s)\twall(s)")
	for i, r := range res.Report.Rounds {
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\t%d\t%.3f\t%.2f\t%.2f\t%.2f\n",
			r.Round, r.Accuracy, r.Loss, len(r.SelectedIDs), r.TotalPayment,
			res.SimTimeSec[i], res.CumSimTimeSec[i], r.WallTimeSec)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if len(res.Report.Blacklisted) > 0 {
		fmt.Printf("blacklisted nodes: %v\n", res.Report.Blacklisted)
	}
	fmt.Printf("final accuracy: %.4f\n", res.Report.FinalAccuracy)
	return nil
}

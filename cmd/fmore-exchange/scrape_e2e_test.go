package main

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fmore/internal/promtext"
	"fmore/internal/transport"
	"fmore/pkg/client"
)

// TestE2EPrometheusScrape is the CI scrape-smoke: start the real binary,
// run one auction round through the SDK, fetch /v1/metrics/prometheus and
// validate it with the promtext parser (name/type/label syntax, histogram
// well-formedness), then scrape again after more work and require the
// counters monotone. The analytics stats endpoints the binary wires in are
// exercised in the same breath.
func TestE2EPrometheusScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the real binary")
	}
	workDir := t.TempDir()
	bin := filepath.Join(workDir, "fmore-exchange")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building binary: %v\n%s", err, out)
	}
	dataDir := filepath.Join(workDir, "data")

	url, stop, _ := startExchange(t, bin, dataDir, "-analytics-window", "5m")
	defer stop()
	c, err := client.New(url)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := c.CreateJob(ctx, client.JobSpec{
		ID:   "scrape",
		Rule: transport.RuleSpec{Kind: "additive", Alpha: []float64{0.5, 0.5}},
		K:    2,
		Seed: 42,
	}); err != nil {
		t.Fatal(err)
	}
	runRound := func(round int) {
		t.Helper()
		for n := 0; n < 4; n++ {
			bid := client.Bid{
				NodeID:    n,
				Qualities: []float64{0.3 + 0.1*float64(n), 0.5},
				Payment:   0.1 + 0.02*float64(n+round),
			}
			if _, err := c.SubmitBid(ctx, "scrape", bid); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.CloseRound(ctx, "scrape"); err != nil {
			t.Fatal(err)
		}
	}
	runRound(1)

	scrape := func() *promtext.Metrics {
		t.Helper()
		text, err := c.PrometheusMetrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		page, err := promtext.Parse(strings.NewReader(text))
		if err != nil {
			t.Fatalf("exposition does not validate: %v", err)
		}
		return page
	}
	first := scrape()
	for _, name := range []string{
		"fmore_exchange_rounds_total",
		"fmore_exchange_bids_accepted_total",
		"fmore_exchange_jobs_active",
		"fmore_exchange_wal_segment_count",
		"fmore_exchange_wal_bytes",
		"fmore_exchange_wal_fsync_total",
		"fmore_exchange_wal_fsync_batched_records",
		"fmore_exchange_firehose_events_total",
		"fmore_exchange_round_latency_seconds",
	} {
		if _, ok := first.Families[name]; !ok {
			t.Errorf("scrape missing %s", name)
		}
	}
	if v, err := first.Value("fmore_exchange_rounds_total"); err != nil || v != 1 {
		t.Fatalf("rounds_total = %v, %v; want 1", v, err)
	}
	// The binary runs durably (-data-dir): the WAL gauges must be live, and
	// the round's records must have hit disk through at least one group
	// commit settling at least as many records as commits.
	if v, err := first.Value("fmore_exchange_wal_segment_count"); err != nil || v != 1 {
		t.Fatalf("wal_segment_count = %v, %v; want 1", v, err)
	}
	// The group-commit hold (default 2ms) may still be open when the first
	// scrape lands, so poll briefly for the commit instead of racing it.
	fsyncDeadline := time.Now().Add(5 * time.Second)
	for {
		page := scrape()
		fsyncs, err := page.Value("fmore_exchange_wal_fsync_total")
		if err != nil {
			t.Fatalf("wal_fsync_total: %v", err)
		}
		if fsyncs >= 1 {
			if v, err := page.Value("fmore_exchange_wal_fsync_batched_records"); err != nil || v < fsyncs {
				t.Fatalf("wal_fsync_batched_records = %v, %v; want >= wal_fsync_total (%v)", v, err, fsyncs)
			}
			break
		}
		if time.Now().After(fsyncDeadline) {
			t.Fatal("wal_fsync_total stayed 0 after a durable round")
		}
		time.Sleep(10 * time.Millisecond)
	}

	runRound(2)
	second := scrape()
	for name, f := range first.Families {
		if f.Type != "counter" {
			continue
		}
		was, err := first.Value(name)
		if err != nil {
			continue
		}
		now, err := second.Value(name)
		if err != nil {
			t.Errorf("counter %s vanished on second scrape: %v", name, err)
			continue
		}
		if now < was {
			t.Errorf("counter %s went backwards: %v -> %v", name, was, now)
		}
	}
	if v, _ := second.Value("fmore_exchange_rounds_total"); v != 2 {
		t.Fatalf("rounds_total after second round = %v, want 2", v)
	}

	// The binary also wires the analytics stats endpoints. The aggregator
	// rides the firehose asynchronously, so poll briefly for the rollup to
	// settle instead of racing the pump.
	var js client.JobStats
	deadline := time.Now().Add(5 * time.Second)
	for {
		js, err = c.JobStats(ctx, "scrape")
		if err != nil {
			t.Fatal(err)
		}
		if js.Lifetime.Rounds == 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if js.Lifetime.Rounds != 2 || js.Lifetime.Bids != 8 {
		t.Fatalf("JobStats from the binary = %+v", js.Lifetime)
	}
	ns, err := c.NodeStats(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ns.Lifetime.Bids != 2 {
		t.Fatalf("NodeStats from the binary = %+v", ns.Lifetime)
	}
}

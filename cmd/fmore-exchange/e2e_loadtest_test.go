package main

import (
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fmore/internal/promtext"
)

// TestE2ELoadtestSmoke is the CI capacity smoke: build the real exchange
// with tight admission limits and the loadtest-tagged fmore-loadgen, run a
// short spike through it, and assert the overload machinery actually
// engaged — healthz flipped to 503 mid-burst and back to 200 after, the
// driver saw sheds but zero close failures (its own exit gate), and the
// admission_* Prometheus family is present and well formed.
func TestE2ELoadtestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the real binaries")
	}
	workDir := t.TempDir()
	exBin := filepath.Join(workDir, "fmore-exchange")
	lgBin := filepath.Join(workDir, "fmore-loadgen")
	for _, b := range []*exec.Cmd{
		exec.Command("go", "build", "-o", exBin, "."),
		exec.Command("go", "build", "-tags", "loadtest", "-o", lgBin, "../fmore-loadgen"),
	} {
		b.Env = os.Environ()
		if out, err := b.CombinedOutput(); err != nil {
			t.Fatalf("building %v: %v\n%s", b.Args, err, out)
		}
	}

	url, _, _ := startExchange(t, exBin, filepath.Join(workDir, "data"),
		"-rate-global", "200", "-max-inflight", "64", "-max-subscribers", "4")

	healthz := func() int {
		resp, err := http.Get(url + "/v1/healthz")
		if err != nil {
			return 0
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := healthz(); got != http.StatusOK {
		t.Fatalf("healthz before load = %d, want 200", got)
	}

	// Drive the spike in the background while this goroutine watches
	// healthz for the overload flip.
	lg := exec.Command(lgBin,
		"-target", url, "-scenario", "spike", "-rate", "400",
		"-duration", "2s", "-workers", "8", "-nodes", "1024")
	lgDone := make(chan error, 1)
	var lgOut []byte
	go func() {
		out, err := lg.CombinedOutput()
		lgOut = out
		lgDone <- err
	}()

	sawOverloaded := false
	deadline := time.Now().Add(15 * time.Second)
	for !sawOverloaded && time.Now().Before(deadline) {
		if healthz() == http.StatusServiceUnavailable {
			sawOverloaded = true
		}
		select {
		case err := <-lgDone:
			if err != nil {
				t.Fatalf("loadgen failed: %v\n%s", err, lgOut)
			}
			lgDone <- nil         // keep the channel readable for the wait below
			deadline = time.Now() // loadgen finished; stop polling either way
		case <-time.After(25 * time.Millisecond):
		}
	}
	if err := <-lgDone; err != nil {
		t.Fatalf("loadgen failed (close invariant or transport): %v\n%s", err, lgOut)
	}
	if !sawOverloaded {
		t.Fatalf("healthz never flipped to 503 during the spike\n%s", lgOut)
	}
	if !strings.Contains(string(lgOut), "step=burst") {
		t.Fatalf("loadgen output missing the burst step:\n%s", lgOut)
	}

	// Overload clears once the burst's shed window passes.
	recovered := false
	for end := time.Now().Add(5 * time.Second); time.Now().Before(end); time.Sleep(50 * time.Millisecond) {
		if healthz() == http.StatusOK {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("healthz did not return to 200 within 5s of the spike ending")
	}

	// The admission metric family must be on the Prometheus surface and
	// carry every shed scope; the global scope did the shedding here.
	resp, err := http.Get(url + "/v1/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m, err := promtext.Parse(resp.Body)
	if err != nil {
		t.Fatalf("prometheus exposition did not parse: %v", err)
	}
	shed, ok := m.Families["fmore_exchange_admission_shed_total"]
	if !ok || shed.Type != "counter" {
		t.Fatalf("admission_shed_total family missing or mistyped: %+v", shed)
	}
	reasons := map[string]bool{}
	var globalShed float64
	for _, s := range shed.Samples {
		reasons[s.Labels["reason"]] = true
		if s.Labels["reason"] == "global" {
			globalShed = s.Value
		}
	}
	for _, want := range []string{"global", "node", "job", "inflight"} {
		if !reasons[want] {
			t.Fatalf("admission_shed_total missing reason=%q (have %v)", want, reasons)
		}
	}
	if globalShed == 0 {
		t.Fatal("spike ran but admission_shed_total{reason=\"global\"} is 0")
	}
	for _, g := range []string{
		"fmore_exchange_admission_inflight",
		"fmore_exchange_admission_sse_active",
		"fmore_exchange_admission_overloaded",
		"fmore_exchange_admission_sse_evicted_total",
	} {
		if _, err := m.Value(g); err != nil {
			t.Fatalf("admission catalog: %v", err)
		}
	}
}

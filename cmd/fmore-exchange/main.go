// fmore-exchange runs the auction exchange as a standalone HTTP service:
// a long-lived aggregator front end hosting many concurrent FL jobs behind
// the versioned /v1 API (the pre-v1 unversioned aliases have been removed;
// they answer 404).
//
//	go run ./cmd/fmore-exchange -addr :8780 -data-dir ./exchange-data
//
// # Partitioned clusters
//
// A single process owns every job. To shard jobs across replicas, start one
// process per partition with -partition naming the slice this replica owns
// and -partition-map the full cluster map (the same spec on every replica):
//
//	go run ./cmd/fmore-exchange -addr :8780 -data-dir ./d \
//	  -partition p0 -partition-map "p0=http://h1:8780,p1=http://h2:8780"
//	go run ./cmd/fmore-exchange -addr :8781 -data-dir ./d \
//	  -partition p1 -partition-map "p0=http://h1:8780,p1=http://h2:8780"
//
// Jobs map to partitions by rendezvous hashing of the job ID. Each replica
// serves the map at GET /v1/cluster/partitions and refuses jobs it does not
// own with a wrong_partition error (HTTP 421) naming the owning replica, so
// clients converge in one retry; the pkg/client SDK and the fmore-router
// reverse proxy both do this transparently. Replicas sharing a -data-dir
// parent keep disjoint WALs under <dir>/replica-<partition>. See the
// topology section of internal/exchange's package docs.
//
// With -data-dir set, every job spec, round outcome, registration and
// blacklisting is appended to a write-ahead log (<dir>/exchange.wal) and
// replayed on the next start: a crashed or restarted exchange serves the
// identical retained outcome history and continues its jobs with
// consistent round numbering and the same deterministic draw sequence.
// The log compacts itself: once the active segment passes -snapshot-bytes
// (default 8 MiB; -snapshot-interval adds a timer) the exchange snapshots
// its durable state, rotates onto a fresh segment and deletes the covered
// ones, so replay time and disk usage stay bounded by live state instead of
// total rounds served. Without the flag the exchange is in-memory only.
//
// The durability/latency tradeoff is tunable without recompiling:
// -sync-interval (default 2ms) bounds how long the log writer coalesces
// records before an fsync when nothing is waiting on durability — the
// crash-loss window is at most that hold plus one fsync — and -commit
// picks the group-commit policy: "adaptive" (default) commits the moment
// the writer's queue drains once a durability waiter is pending, so a
// waiter never idles out the hold while records racing in behind it still
// share its fsync; "fixed" always holds the full -sync-interval,
// minimizing flush count at the cost of commit latency. The achieved
// batching is observable as wal_fsync_total vs wal_fsync_batched_records
// in the metric catalog.
//
// # Storage failure policy
//
// -on-wal-failure picks what happens when the log takes its first sticky
// error (EIO, ENOSPC, a failed fsync or rotation — the error never
// clears; see the "Failure model & degraded mode" section of
// internal/exchange's docs). "degrade" (default) keeps the replica up in
// read-only-for-writes mode: bid submits, round closes and job mutations
// answer 503 {"code":"durability_lost","retry_after_ms":N}, outcome
// reads/pages/SSE keep serving what memory holds, GET /v1/healthz flips
// to 503 {"status":"degraded"} so the fmore-router steers new bid traffic
// to healthy replicas, and wal_failed / wal_last_error_unix appear in
// both metric surfaces. "failstop" exits the process instead, for
// deployments that prefer crash-and-failover to a degraded survivor.
// Recovery is a restart against repaired storage: replay serves
// everything that reached the log before the error.
//
// For chaos drills, the FMORE_FAILPOINTS environment variable arms
// deterministic fault-injection sites inside the WAL (see internal/fault
// for the spec grammar); unset, the sites cost one dormant atomic load.
//
// # Admission control
//
// Overload protection is off unless at least one limit flag is set:
//
//	-rate-global N      exchange-wide bid-submit ceiling, bids/sec
//	-rate-node N        per-node bid-submit ceiling, bids/sec
//	-rate-job N         per-job bid-submit ceiling, bids/sec
//	-admission-burst D  burst window each limit absorbs (default 250ms;
//	                    burst = rate x window, min 1)
//	-max-inflight N     concurrent bid submits inside the handler; beyond
//	                    it requests shed before the body is read
//	-max-subscribers N  SSE stream cap; the oldest stream is evicted to
//	                    admit a new one
//
// Shed bid submits answer 429 {"code":"overloaded","retry_after_ms":N};
// the pkg/client SDK sleeps the hint and retries with the same
// Idempotency-Key (a shed never burns the key). Round closes, WAL commits
// and SSE heartbeats are never shed. GET /v1/healthz reports the overload
// state: 200 {"status":"ok"} normally, 503 {"status":"overloaded",
// "retry_after_ms":N} while shedding — the fmore-router probes it and
// fails fast on the replica's behalf. The admission_* metric family
// (sheds by scope, in-flight gauge, SSE occupancy/evictions, overload
// bit) appears in both /v1/metrics and /v1/metrics/prometheus.
//
// -pprof-addr (off by default) serves net/http/pprof on a separate
// listener for live profiling; while it is up, mutex contention is
// sampled (1 in 100) so /debug/pprof/mutex has data for lock hunts.
//
// The supported Go surface is the pkg/client SDK; the raw API quickstart
// below shows the wire shapes. Create a job, bid, read the outcome:
//
//	curl -s -X POST localhost:8780/v1/jobs -d '{
//	  "id": "demo", "k": 2, "seed": 7, "bid_window_ms": 1000,
//	  "keep_outcomes": 64,
//	  "rule": {"kind": "additive", "alpha": [0.5, 0.5]}
//	}'
//	curl -s -X POST localhost:8780/v1/jobs/demo/bids -d '{
//	  "node_id": 1, "qualities": [0.8, 0.6], "payment": 0.2
//	}'
//	curl -s 'localhost:8780/v1/jobs/demo/outcome?wait=1'
//	curl -s localhost:8780/v1/metrics
//
// Observability: GET /v1/metrics/prometheus serves the full metric
// catalog in Prometheus text exposition format (see the catalog in
// internal/exchange's package docs), and the analytics endpoints serve
// windowed + lifetime rollups fed by the exchange's event firehose:
//
//	curl -s localhost:8780/v1/metrics/prometheus
//	curl -s localhost:8780/v1/jobs/demo/stats
//	curl -s localhost:8780/v1/nodes/1/stats
//
// -analytics-window sets the rollup horizon (default 10m).
//
// Instead of polling, subscribe to the server-push round stream (SSE;
// round_open, round_closed with the outcome inline, job_closed; reconnect
// with Last-Event-ID to replay missed rounds losslessly):
//
//	curl -sN localhost:8780/v1/jobs/demo/events
//
// Errors are uniform {code, message, retry_after_ms?} JSON. POST /v1/jobs
// and bid submission honor an Idempotency-Key header (retries replay the
// original response); listings paginate with ?cursor= and ?limit=.
//
// A job created with an "equilibrium" block (bidder cost family, θ
// distribution, population size, quality box) additionally serves the
// solved Theorem 1 bid curve, so edge clients can interpolate their
// equilibrium (quality, payment) bid instead of running the solver:
//
//	curl -s -X POST localhost:8780/v1/jobs -d '{
//	  "id": "eq-demo", "k": 5, "seed": 7,
//	  "rule": {"kind": "cobb-douglas", "alpha": [1, 1], "scale": 25},
//	  "equilibrium": {
//	    "cost": {"kind": "linear", "beta": [0.5, 0.5]},
//	    "theta": {"kind": "uniform", "lo": 1, "hi": 2},
//	    "n": 40, "q_lo": [0, 0], "q_hi": [1, 1]
//	  }
//	}'
//	curl -s 'localhost:8780/v1/jobs/eq-demo/strategy?samples=9'
//
// Kill the process and start it again with the same -data-dir:
// GET /v1/jobs/demo/outcome?round=1 returns the same bytes as before.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on the DefaultServeMux served at -pprof-addr
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"fmore/internal/admission"
	"fmore/internal/analytics"
	"fmore/internal/exchange"
	"fmore/internal/fault"
	"fmore/internal/partition"
)

func main() {
	addr := flag.String("addr", ":8780", "HTTP listen address (:0 picks a free port, logged on start)")
	workers := flag.Int("workers", 0, "scoring pool workers (0 = GOMAXPROCS)")
	dataDir := flag.String("data-dir", "",
		"directory for the write-ahead outcome log; replayed on start (empty = in-memory only)")
	requireReg := flag.Bool("require-registration", false,
		"reject bids from nodes that have not registered via POST /v1/nodes")
	snapshotBytes := flag.Int64("snapshot-bytes", 0,
		"WAL segment size that triggers snapshot + log rotation (0 = default 8 MiB, negative disables)")
	snapshotInterval := flag.Duration("snapshot-interval", 0,
		"additionally snapshot + rotate the WAL on this period (0 = size trigger only)")
	syncInterval := flag.Duration("sync-interval", 0,
		"WAL group-commit hold: how long the log writer coalesces records before each fsync when no Sync waiter is pending (0 = default 2ms); the crash-loss window is bounded by this plus one fsync")
	commitPolicy := flag.String("commit", "adaptive",
		`WAL group-commit policy: "adaptive" (default; commit as soon as the writer's queue drains once a durability waiter is pending) or "fixed" (always hold each commit open for the full -sync-interval)`)
	onWALFailure := flag.String("on-wal-failure", "degrade",
		`storage failure policy after the WAL's first sticky error: "degrade" (default; keep serving reads, answer durable writes with 503 durability_lost, report degraded on /v1/healthz) or "failstop" (exit immediately)`)
	pprofAddr := flag.String("pprof-addr", "",
		"serve net/http/pprof on this address (empty = disabled); keep it loopback-only in production")
	analyticsWindow := flag.Duration("analytics-window", 0,
		"sliding window for the /stats rollup endpoints (0 = default 10m)")
	partitionID := flag.String("partition", "",
		"partition this replica owns (requires -partition-map; empty = unpartitioned)")
	partitionMap := flag.String("partition-map", "",
		`cluster partition map, "p0=http://host:port,p1=..." (same spec on every replica)`)
	rateGlobal := flag.Float64("rate-global", 0,
		"admission: exchange-wide bid-submit ceiling in bids/sec (0 = unlimited)")
	rateNode := flag.Float64("rate-node", 0,
		"admission: per-node bid-submit ceiling in bids/sec (0 = unlimited)")
	rateJob := flag.Float64("rate-job", 0,
		"admission: per-job bid-submit ceiling in bids/sec (0 = unlimited)")
	admissionBurst := flag.Duration("admission-burst", 250*time.Millisecond,
		"admission: burst window each rate limit may absorb at once (burst = rate x window, min 1)")
	maxInflight := flag.Int64("max-inflight", 0,
		"admission: bid submits allowed inside the handler at once; beyond it requests shed with 429 before the body is read (0 = unlimited)")
	maxSubscribers := flag.Int("max-subscribers", 0,
		"admission: SSE event-stream cap; at the cap the oldest stream is evicted to admit a new subscriber (0 = unlimited)")
	flag.Parse()

	opts := exchange.Options{
		Workers:             *workers,
		RequireRegistration: *requireReg,
		SnapshotBytes:       *snapshotBytes,
		SnapshotInterval:    *snapshotInterval,
		SyncInterval:        *syncInterval,
	}
	switch *commitPolicy {
	case "adaptive":
		opts.Commit = exchange.CommitAdaptive
	case "fixed":
		opts.Commit = exchange.CommitFixed
	default:
		log.Fatalf(`-commit must be "adaptive" or "fixed", got %q`, *commitPolicy)
	}
	switch *onWALFailure {
	case "degrade":
		opts.OnWALFailure = exchange.WALDegrade
	case "failstop":
		opts.OnWALFailure = exchange.WALFailstop
	default:
		log.Fatalf(`-on-wal-failure must be "degrade" or "failstop", got %q`, *onWALFailure)
	}
	// Failpoint activation (FMORE_FAILPOINTS, see internal/fault): dormant
	// and free unless the environment arms a site — the chaos harness's
	// lever for injecting disk faults into a real binary.
	if err := fault.EnableFromEnv(); err != nil {
		log.Fatalf("%s: %v", fault.EnvVar, err)
	}
	if *rateGlobal > 0 || *rateNode > 0 || *rateJob > 0 || *maxInflight > 0 || *maxSubscribers > 0 {
		burst := func(rate float64) int {
			b := int(rate * admissionBurst.Seconds())
			if b < 1 {
				b = 1
			}
			return b
		}
		opts.Admission = admission.NewController(admission.Config{
			GlobalRate:  *rateGlobal,
			GlobalBurst: burst(*rateGlobal),
			NodeRate:    *rateNode,
			NodeBurst:   burst(*rateNode),
			JobRate:     *rateJob,
			JobBurst:    burst(*rateJob),
			MaxInflight: *maxInflight,
			MaxStreams:  *maxSubscribers,
		})
	}
	if (*partitionID == "") != (*partitionMap == "") {
		log.Fatal("-partition and -partition-map must be set together")
	}
	if *partitionID != "" {
		m, err := partition.Parse(*partitionMap)
		if err != nil {
			log.Fatalf("parsing -partition-map: %v", err)
		}
		opts.Partition = &partition.Assignment{Local: *partitionID, Map: partition.NewHandle(m)}
		if err := opts.Partition.Validate(); err != nil {
			log.Fatalf("-partition: %v", err)
		}
	}
	if *pprofAddr != "" {
		// The profiling surface stays off the service mux (and off by
		// default): exposing goroutine dumps and heap profiles next to the
		// public API would be an operational footgun.
		//
		// Mutex profiling is sampled only while the pprof listener is up:
		// /debug/pprof/mutex is where the next lock hunt starts, and the
		// 1-in-100 sampling costs a contended path a counter update at
		// worst — nothing when contention is rare, which is the hypothesis
		// the profile exists to check.
		runtime.SetMutexProfileFraction(100)
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}
	var (
		ex  *exchange.Exchange
		err error
	)
	if *dataDir != "" {
		ex, err = exchange.Open(*dataDir, opts)
		if err != nil {
			log.Fatalf("opening data dir: %v", err)
		}
		log.Printf("recovered %d jobs, %d nodes from %s",
			len(ex.JobIDs()), ex.Registry().Len(), *dataDir)
	} else {
		ex = exchange.New(opts)
	}
	// Listen explicitly (rather than ListenAndServe) so -addr :0 works and
	// the resolved address is in the log for scripts to scrape.
	listener, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	// Event streams are long-lived requests; deriving them from a
	// cancelable base context lets shutdown end them instead of waiting out
	// the drain timeout.
	srvCtx, srvCancel := context.WithCancel(context.Background())
	defer srvCancel()
	// The analytics aggregator rides the firehose (drop-on-slow, so it can
	// never hold up round closes) and adds the /stats endpoints in front of
	// the exchange handler.
	agg := analytics.New(analytics.Options{Window: *analyticsWindow})
	detach := ex.Firehose().Attach(agg)
	defer detach()
	server := &http.Server{
		Handler:           analytics.NewHandler(ex, agg, exchange.NewHandler(ex)),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return srvCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- server.Serve(listener) }()
	log.Printf("fmore-exchange listening on %s (workers=%d, require-registration=%v, data-dir=%q, partition=%q)",
		listener.Addr(), *workers, *requireReg, *dataDir, *partitionID)

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Print("shutting down")
	srvCancel() // release open event streams so the drain below is quick
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	// Surface any sticky log-writer error before Close flushes and closes
	// the file; a failing WAL device must not go unnoticed at shutdown.
	if err := ex.Sync(); err != nil {
		log.Printf("outcome log: %v", err)
	}
	if err := ex.Close(); err != nil {
		log.Printf("outcome log close: %v", err)
	}
	snap := ex.Metrics()
	log.Printf("served %d rounds, %d bids (%.1f bids/sec, p99 round latency %.2fms)",
		snap.RoundsTotal, snap.BidsAccepted, snap.BidsPerSec, snap.RoundLatencyP99Ms)
}

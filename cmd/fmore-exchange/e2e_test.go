package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"fmore/internal/transport"
	"fmore/pkg/client"
)

// listenRe scrapes the resolved listen address from the service log.
var listenRe = regexp.MustCompile(`listening on ([^ ]+) `)

// startExchange starts the exchange binary with the given data dir (plus
// any extra flags), returning the base URL, a stopper that SIGTERMs the
// process and waits for exit, and the running command (for tests that kill
// the process hard instead).
func startExchange(t *testing.T, bin, dataDir string, extra ...string) (string, func(), *exec.Cmd) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data-dir", dataDir}, extra...)
	return startProc(t, bin, args...)
}

// startProc starts one service binary (exchange or router), scrapes its
// "listening on" log line for the resolved address, and returns the base
// URL plus lifecycle handles.
func startProc(t *testing.T, bin string, args ...string) (string, func(), *exec.Cmd) {
	t.Helper()
	return startProcEnv(t, bin, nil, args...)
}

// startProcEnv is startProc with extra environment entries (e.g.
// FMORE_FAILPOINTS specs for the chaos tests).
func startProcEnv(t *testing.T, bin string, extraEnv []string, args ...string) (string, func(), *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), extraEnv...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	}
	t.Cleanup(stop)

	// Scrape the log for the resolved port; keep draining afterwards so
	// the process never blocks on a full pipe.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := listenRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, stop, cmd
	case <-time.After(30 * time.Second):
		t.Fatal("service did not announce its listen address within 30s")
		return "", nil, nil
	}
}

// TestE2ESmoke is the CI end-to-end smoke: build the real binary, start it
// with a data dir, drive one full round through the pkg/client SDK with
// the event stream attached, check the metrics round counter, then restart
// the process and verify the outcome survived byte-identically.
func TestE2ESmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the real binary")
	}
	workDir := t.TempDir()
	bin := filepath.Join(workDir, "fmore-exchange")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building binary: %v\n%s", err, out)
	}
	dataDir := filepath.Join(workDir, "data")

	url, stop, _ := startExchange(t, bin, dataDir)
	c, err := client.New(url)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := c.CreateJob(ctx, client.JobSpec{
		ID:   "smoke",
		Rule: transport.RuleSpec{Kind: "additive", Alpha: []float64{0.5, 0.5}},
		K:    2,
		Seed: 42,
	}); err != nil {
		t.Fatalf("create job: %v", err)
	}

	watchCtx, cancelWatch := context.WithCancel(ctx)
	defer cancelWatch()
	watch, err := c.WatchRounds(watchCtx, "smoke", client.WatchOptions{})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	for node := 0; node < 4; node++ {
		if _, err := c.SubmitBid(ctx, "smoke", client.Bid{
			NodeID:    node,
			Qualities: []float64{0.2 * float64(node+1), 0.9 - 0.1*float64(node)},
			Payment:   0.1,
		}); err != nil {
			t.Fatalf("bid %d: %v", node, err)
		}
	}
	closed, err := c.CloseRound(ctx, "smoke")
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if closed.Round != 1 || len(closed.Winners) != 2 {
		t.Fatalf("close outcome = %+v", closed)
	}
	// The round arrives by push with the outcome inline.
	deadline := time.After(30 * time.Second)
	var pushed *client.Outcome
	for pushed == nil {
		select {
		case ev, ok := <-watch.Events():
			if !ok {
				t.Fatalf("watch ended early: %v", watch.Err())
			}
			if ev.Type == client.RoundClosed {
				pushed = ev.Outcome
			}
		case <-deadline:
			t.Fatal("no round_closed event within 30s")
		}
	}
	if fmt.Sprint(*pushed) != fmt.Sprint(closed) {
		t.Fatalf("pushed outcome differs from close response:\n%+v\n%+v", pushed, closed)
	}
	// Metrics report the round (the CI greps this counter via the SDK).
	m, err := c.Metrics(ctx)
	if err != nil || m.RoundsTotal < 1 || m.BidsAccepted < 4 {
		t.Fatalf("metrics = %+v err %v", m, err)
	}
	rawBefore := rawOutcome(t, url, "smoke", 1)
	cancelWatch()
	stop()

	// Restart from the same data dir: same bytes through the same API.
	url2, _, _ := startExchange(t, bin, dataDir)
	c2, err := client.New(url2)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := c2.Outcome(ctx, "smoke", 1)
	if err != nil || recovered.Round != 1 {
		t.Fatalf("recovered outcome = %+v err %v", recovered, err)
	}
	if rawAfter := rawOutcome(t, url2, "smoke", 1); rawAfter != rawBefore {
		t.Fatalf("outcome bytes changed across process restart:\n%s\n%s", rawBefore, rawAfter)
	}
	// The pre-v1 aliases are gone: unversioned paths 404 with the v1 envelope.
	resp, err := http.Get(url2 + "/jobs/smoke/outcome?round=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // read
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("removed legacy path: status %d Content-Type %q, want 404 application/json",
			resp.StatusCode, resp.Header.Get("Content-Type"))
	}
}

// TestE2ESnapshotRecovery is the CI smoke of WAL compaction on the real
// binary: run enough rounds past a tiny -snapshot-bytes threshold that the
// service snapshots and rotates its log on its own, capture the outcome
// page bytes, kill the process hard (SIGKILL — compaction must be crash
// safe, not shutdown safe), restart from the same dir and require the
// identical bytes plus a working continuation round.
func TestE2ESnapshotRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the real binary")
	}
	workDir := t.TempDir()
	bin := filepath.Join(workDir, "fmore-exchange")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building binary: %v\n%s", err, out)
	}
	dataDir := filepath.Join(workDir, "data")

	url, stop, cmd := startExchange(t, bin, dataDir, "-snapshot-bytes", "4096")
	c, err := client.New(url)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if _, err := c.CreateJob(ctx, client.JobSpec{
		ID:           "rotated",
		Rule:         transport.RuleSpec{Kind: "additive", Alpha: []float64{0.6, 0.4}},
		K:            2,
		Seed:         7,
		KeepOutcomes: 8,
	}); err != nil {
		t.Fatalf("create job: %v", err)
	}
	runRound := func(base *client.Client, round int) {
		t.Helper()
		for node := 0; node < 6; node++ {
			if _, err := base.SubmitBid(ctx, "rotated", client.Bid{
				NodeID:    node,
				Qualities: []float64{0.1 * float64(node+1), 0.9 - 0.1*float64(node)},
				Payment:   0.05 + 0.01*float64(round),
			}); err != nil {
				t.Fatalf("round %d bid %d: %v", round, node, err)
			}
		}
		if _, err := base.CloseRound(ctx, "rotated"); err != nil {
			t.Fatalf("round %d close: %v", round, err)
		}
	}
	// Each round appends ~1 KiB of records, so a handful of rounds crosses
	// the 4 KiB threshold; wait until the service reports a completed
	// snapshot rather than assuming.
	round := 0
	deadline := time.Now().Add(60 * time.Second)
	for {
		round++
		runRound(c, round)
		m, err := c.Metrics(ctx)
		if err != nil {
			t.Fatalf("metrics: %v", err)
		}
		if m.WalSnapshots >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("the exchange never snapshotted past the 4 KiB threshold")
		}
	}
	// A couple of tail rounds after the rotation, then capture and kill -9.
	runRound(c, round+1)
	runRound(c, round+2)
	pageBefore := rawOutcomesPage(t, url, "rotated")
	// The WAL group-commits within its 2ms window; give the writer ample
	// slack so the captured rounds are on disk before the hard kill (the
	// durability contract allows losing the unflushed window, and this test
	// is about snapshot replay, not that window).
	time.Sleep(500 * time.Millisecond)

	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no shutdown flush
		t.Fatalf("kill -9: %v", err)
	}
	stop() // reaps the killed process so the restart can take the dir lock

	url2, _, _ := startExchange(t, bin, dataDir, "-snapshot-bytes", "4096")
	if pageAfter := rawOutcomesPage(t, url2, "rotated"); pageAfter != pageBefore {
		t.Fatalf("outcome pages diverged across snapshot recovery:\nbefore: %s\nafter:  %s", pageBefore, pageAfter)
	}
	c2, err := client.New(url2)
	if err != nil {
		t.Fatal(err)
	}
	runRound(c2, round+3) // the recovered exchange keeps closing rounds
}

// rawOutcomesPage fetches the raw GET /v1/jobs/{id}/outcomes bytes — the
// externally visible form of the snapshot-replay guarantee.
func rawOutcomesPage(t *testing.T, base, jobID string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + jobID + "/outcomes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // read
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("outcomes page status %d: %s", resp.StatusCode, b)
	}
	return strings.TrimSpace(string(b))
}

// rawOutcome fetches the raw bytes of one outcome response (the byte-level
// witness the SDK would re-serialize away).
func rawOutcome(t *testing.T, base, jobID string, round int) string {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/outcome?round=%d", base, jobID, round))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // read
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw outcome status %d: %s", resp.StatusCode, b)
	}
	return strings.TrimSpace(string(b))
}

package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"fmore/internal/partition"
	"fmore/internal/transport"
	"fmore/pkg/client"
)

// freePort reserves an ephemeral port and releases it for the service to
// claim. The partitioned replicas need their URLs known before they start
// (the map spec embeds them), so :0 self-announcement is not enough here.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close() //nolint:errcheck // release for reuse
	return l.Addr().(*net.TCPAddr).Port
}

// clusterJob finds a job ID the given partition owns under m.
func clusterJob(t *testing.T, m *partition.Map, part string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("cluster-%d", i)
		if m.Owns(part, id) {
			return id
		}
	}
	t.Fatalf("no candidate job for %s", part)
	return ""
}

// TestE2EMultiReplica is the CI multi-replica smoke: build the real
// exchange and router binaries, start two partitioned replicas sharing one
// data-dir parent plus a router, create jobs hashing to both partitions
// through the SDK, drive a round on each, check routed and direct reads are
// byte-identical, then kill -9 one replica, restart it, and require its
// outcome pages unchanged.
func TestE2EMultiReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the real binaries")
	}
	workDir := t.TempDir()
	exBin := filepath.Join(workDir, "fmore-exchange")
	rtBin := filepath.Join(workDir, "fmore-router")
	for target, bin := range map[string]string{".": exBin, "../fmore-router": rtBin} {
		build := exec.Command("go", "build", "-o", bin, target)
		build.Env = os.Environ()
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", target, err, out)
		}
	}

	// The replicas' URLs are part of the map spec, so reserve ports first.
	port0, port1 := freePort(t), freePort(t)
	url0 := fmt.Sprintf("http://127.0.0.1:%d", port0)
	url1 := fmt.Sprintf("http://127.0.0.1:%d", port1)
	spec := fmt.Sprintf("p0=%s,p1=%s", url0, url1)
	m, err := partition.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Both replicas share one -data-dir parent; each namespaces its WAL
	// under <dir>/replica-<partition>.
	dataDir := filepath.Join(workDir, "data")
	startReplica := func(part string, port int) (func(), *exec.Cmd) {
		_, stop, cmd := startProc(t, exBin,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port), "-data-dir", dataDir,
			"-partition", part, "-partition-map", spec)
		return stop, cmd
	}
	stop0, cmd0 := startReplica("p0", port0)
	startReplica("p1", port1)
	routerURL, _, _ := startProc(t, rtBin, "-addr", "127.0.0.1:0", "-replicas", spec)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	c, err := client.New(routerURL)
	if err != nil {
		t.Fatal(err)
	}
	// SDK-side routing: fetch the map through the router (which forwards
	// the cluster endpoint) and aim per-job calls directly at replicas.
	if err := c.EnableRouting(ctx); err != nil {
		t.Fatalf("EnableRouting: %v", err)
	}
	if v := c.RoutingVersion(); v != 1 {
		t.Fatalf("RoutingVersion = %d, want 1", v)
	}

	job0, job1 := clusterJob(t, m, "p0"), clusterJob(t, m, "p1")
	for _, id := range []string{job0, job1} {
		if _, err := c.CreateJob(ctx, client.JobSpec{
			ID:   id,
			Rule: transport.RuleSpec{Kind: "additive", Alpha: []float64{0.5, 0.5}},
			K:    2,
			Seed: 42,
		}); err != nil {
			t.Fatalf("create %s: %v", id, err)
		}
		for node := 0; node < 4; node++ {
			if _, err := c.SubmitBid(ctx, id, client.Bid{
				NodeID:    node,
				Qualities: []float64{0.2 * float64(node+1), 0.9 - 0.1*float64(node)},
				Payment:   0.1,
			}); err != nil {
				t.Fatalf("%s bid %d: %v", id, node, err)
			}
		}
		out, err := c.CloseRound(ctx, id)
		if err != nil {
			t.Fatalf("close %s: %v", id, err)
		}
		if out.Round != 1 || len(out.Winners) != 2 {
			t.Fatalf("close %s outcome = %+v", id, out)
		}
	}

	// Each job is served by exactly one replica: the owner hosts it, the
	// other replica refuses it with wrong_partition (421).
	for _, probe := range []struct{ ownerURL, otherURL, id string }{
		{url0, url1, job0},
		{url1, url0, job1},
	} {
		resp, err := http.Get(probe.ownerURL + "/v1/jobs/" + probe.id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //nolint:errcheck // status only
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("owner of %s answered %d", probe.id, resp.StatusCode)
		}
		resp, err = http.Get(probe.otherURL + "/v1/jobs/" + probe.id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //nolint:errcheck // status only
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Fatalf("non-owner of %s answered %d, want 421", probe.id, resp.StatusCode)
		}
	}

	// A misdirected SDK client (no routing, pointed at the wrong replica)
	// converges in one transparent retry and reads the same bytes as the
	// owner and the router serve.
	misdirected, err := client.New(url1)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := misdirected.Outcome(ctx, job0, 1); err != nil || got.Round != 1 {
		t.Fatalf("misdirected outcome = %+v err %v", got, err)
	}
	direct0 := rawOutcome(t, url0, job0, 1)
	if viaRouter := rawOutcome(t, routerURL, job0, 1); viaRouter != direct0 {
		t.Fatalf("routed and direct outcome bytes differ:\nrouter: %s\ndirect: %s", viaRouter, direct0)
	}
	direct1 := rawOutcome(t, url1, job1, 1)
	if viaRouter := rawOutcome(t, routerURL, job1, 1); viaRouter != direct1 {
		t.Fatalf("routed and direct outcome bytes differ:\nrouter: %s\ndirect: %s", viaRouter, direct1)
	}

	// The replicas kept disjoint WALs under the shared parent.
	for _, sub := range []string{"replica-p0", "replica-p1"} {
		if _, err := os.Stat(filepath.Join(dataDir, sub)); err != nil {
			t.Fatalf("replica WAL namespace missing: %v", err)
		}
	}

	// Crash one replica hard and restart it on the same port: its outcome
	// pages must come back byte-identical (the group-commit window is long
	// flushed by now).
	time.Sleep(500 * time.Millisecond)
	if err := cmd0.Process.Kill(); err != nil {
		t.Fatalf("kill -9 p0: %v", err)
	}
	stop0() // reap so the restart can reclaim the data dir
	startReplica("p0", port0)
	if after := rawOutcome(t, url0, job0, 1); after != direct0 {
		t.Fatalf("p0 outcome bytes changed across kill -9/restart:\nbefore: %s\nafter:  %s", direct0, after)
	}
	// And the restarted replica still serves through the router.
	if after := rawOutcome(t, routerURL, job0, 1); after != direct0 {
		t.Fatalf("routed read after restart diverged:\nbefore: %s\nafter:  %s", direct0, after)
	}
}

package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fmore/internal/partition"
)

// httpDo is the chaos test's tolerant HTTP helper: unlike rawOutcome it
// returns the status instead of failing, because half the point is probing
// endpoints that are supposed to refuse.
func httpDo(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close() //nolint:errcheck // read below
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestE2EChaos is the CI chaos smoke: a two-replica cluster plus router
// built from the real binaries, with a torn-EIO frame write injected into
// replica p0's WAL via FMORE_FAILPOINTS. It drives rounds until the fault
// fires, then asserts the whole degraded-mode contract: durable writes
// refused with 503 durability_lost while reads keep serving, healthz
// degraded, the router steering bid traffic away, the healthy peer
// unaffected — and after kill -9 plus a clean restart, every acknowledged
// outcome (outside the group-commit grace window around the failure)
// recovered byte-identically.
func TestE2EChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the real binaries")
	}
	workDir := t.TempDir()
	exBin := filepath.Join(workDir, "fmore-exchange")
	rtBin := filepath.Join(workDir, "fmore-router")
	for target, bin := range map[string]string{".": exBin, "../fmore-router": rtBin} {
		build := exec.Command("go", "build", "-o", bin, target)
		build.Env = os.Environ()
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", target, err, out)
		}
	}

	port0, port1 := freePort(t), freePort(t)
	url0 := fmt.Sprintf("http://127.0.0.1:%d", port0)
	url1 := fmt.Sprintf("http://127.0.0.1:%d", port1)
	spec := fmt.Sprintf("p0=%s,p1=%s", url0, url1)
	m, err := partition.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(workDir, "data")

	startReplica := func(part string, port int, env []string) (func(), *exec.Cmd) {
		_, stop, cmd := startProcEnv(t, exBin, env,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port), "-data-dir", dataDir,
			"-partition", part, "-partition-map", spec)
		return stop, cmd
	}
	// The ~25th batch write on p0 tears after 9 bytes with a sticky EIO:
	// a run of healthy durable rounds first, then the storage fault.
	stop0, cmd0 := startReplica("p0", port0, []string{"FMORE_FAILPOINTS=wal/write=torn:9@25+"})
	startReplica("p1", port1, nil)
	routerURL, _, _ := startProc(t, rtBin, "-addr", "127.0.0.1:0", "-replicas", spec)

	job0, job1 := clusterJob(t, m, "p0"), clusterJob(t, m, "p1")
	for _, j := range []string{job0, job1} {
		st, body := httpDo(t, http.MethodPost, routerURL+"/v1/jobs",
			fmt.Sprintf(`{"id":%q,"k":2,"seed":7,"keep_outcomes":256,"rule":{"kind":"additive","alpha":[0.6,0.4]}}`, j))
		if st != http.StatusCreated {
			t.Fatalf("create %s: %d %s", j, st, body)
		}
	}

	// Drive rounds on p0 directly until the injected tear degrades it.
	// Every acked (HTTP 200) close is snapshotted through the read API —
	// the bytes recovery must reproduce.
	ackedBytes := map[int]string{}
	ackedAt := map[int]time.Time{}
	ackedOrder := []int{}
	degradedAt := 0
	var degradeTime time.Time
	for r := 1; r <= 400 && degradedAt == 0; r++ {
		for n := 0; n < 4; n++ {
			st, body := httpDo(t, http.MethodPost, url0+"/v1/jobs/"+job0+"/bids",
				fmt.Sprintf(`{"node_id":%d,"qualities":[0.5,0.5],"payment":0.1}`, n))
			if st == http.StatusServiceUnavailable && strings.Contains(body, "durability_lost") {
				degradedAt, degradeTime = r, time.Now()
				break
			}
			if st != http.StatusAccepted {
				t.Fatalf("round %d bid %d: %d %s", r, n, st, body)
			}
		}
		if degradedAt != 0 {
			break
		}
		st, body := httpDo(t, http.MethodPost, url0+"/v1/jobs/"+job0+"/close", "")
		switch {
		case st == http.StatusOK:
			if gst, gbody := httpDo(t, http.MethodGet, fmt.Sprintf("%s/v1/jobs/%s/outcome?round=%d", url0, job0, r), ""); gst == http.StatusOK {
				ackedBytes[r] = gbody
				ackedAt[r] = time.Now()
				ackedOrder = append(ackedOrder, r)
			}
		case st == http.StatusServiceUnavailable && strings.Contains(body, "durability_lost"):
			degradedAt, degradeTime = r, time.Now()
		default:
			t.Fatalf("round %d close: %d %s", r, st, body)
		}
	}
	if degradedAt == 0 {
		t.Fatal("p0 never degraded despite the torn-write injection")
	}
	if len(ackedOrder) < 10 {
		t.Fatalf("only %d rounds acked before the fault — injection fired too early", len(ackedOrder))
	}

	// Degraded contract on p0: healthz flipped, reads still serve.
	if st, body := httpDo(t, http.MethodGet, url0+"/v1/healthz", ""); st != http.StatusServiceUnavailable || !strings.Contains(body, `"degraded"`) {
		t.Fatalf("degraded healthz: %d %s, want 503 degraded", st, body)
	}
	if st, _ := httpDo(t, http.MethodGet, url0+"/v1/jobs/"+job0+"/outcomes", ""); st != http.StatusOK {
		t.Fatalf("degraded p0 refused a read: %d", st)
	}
	// The healthy peer keeps taking durable writes.
	for n := 0; n < 4; n++ {
		if st, body := httpDo(t, http.MethodPost, url1+"/v1/jobs/"+job1+"/bids",
			fmt.Sprintf(`{"node_id":%d,"qualities":[0.5,0.5],"payment":0.1}`, n)); st != http.StatusAccepted {
			t.Fatalf("healthy peer bid: %d %s", st, body)
		}
	}
	if st, body := httpDo(t, http.MethodPost, url1+"/v1/jobs/"+job1+"/close", ""); st != http.StatusOK {
		t.Fatalf("healthy peer close: %d %s", st, body)
	}
	// The router's healthz probe must steer sheddable bid traffic away
	// from p0 (429), while job-scoped reads still route through.
	steered := false
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); time.Sleep(250 * time.Millisecond) {
		if st, _ := httpDo(t, http.MethodPost, routerURL+"/v1/jobs/"+job0+"/bids",
			`{"node_id":9,"qualities":[0.5,0.5],"payment":0.1}`); st == http.StatusTooManyRequests {
			steered = true
			break
		}
	}
	if !steered {
		t.Fatal("router never steered bid traffic away from the degraded replica")
	}

	// kill -9 the degraded replica and restart it with a healthy disk.
	if err := cmd0.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	stop0() // reap so the restart can take the port and data dir
	startReplica("p0", port0, nil)
	if st, body := httpDo(t, http.MethodGet, url0+"/v1/healthz", ""); st != http.StatusOK {
		t.Fatalf("restarted p0 healthz: %d %s", st, body)
	}

	// Recovery invariant. Closes are acked from memory with the WAL record
	// in the group-commit queue, so acks inside the commit window that the
	// torn write destroyed can be lost — but the log is sequential, so any
	// loss must be a contiguous tail of the ack sequence, every lost ack
	// must sit hard against the failure (within ackGrace of it), and every
	// recovered round must be byte-identical to what was served pre-crash.
	const ackGrace = time.Second
	recovered := 0
	lost := false
	for _, r := range ackedOrder {
		st, body := httpDo(t, http.MethodGet, fmt.Sprintf("%s/v1/jobs/%s/outcome?round=%d", url0, job0, r), "")
		if st != http.StatusOK {
			if degradeTime.Sub(ackedAt[r]) > ackGrace {
				t.Fatalf("round %d, acked %v before the fault, missing after recovery", r, degradeTime.Sub(ackedAt[r]))
			}
			lost = true
			continue
		}
		if lost {
			t.Fatalf("round %d recovered after an earlier acked round was lost — tail loss must be contiguous", r)
		}
		recovered++
		if body != ackedBytes[r] {
			t.Errorf("round %d diverged across crash recovery", r)
		}
	}
	if recovered == 0 {
		t.Fatal("no acknowledged round survived recovery")
	}
	t.Logf("chaos: %d rounds acked, %d recovered byte-identical, %d lost in the commit window",
		len(ackedOrder), recovered, len(ackedOrder)-recovered)
}

// fmore-loadgen is the capacity-proof harness for fmore-exchange: an
// open-loop bid-submit driver that measures what a replica actually
// sustains, where it breaks, and whether admission control keeps round
// closes healthy while the exchange sheds.
//
// The driver is deliberately build-tagged: the default build is a stub so
// `go build ./...` stays fast and dependency-light, and the real harness
// compiles with
//
//	go build -tags loadtest ./cmd/fmore-loadgen
//
// Usage against a running exchange (start it with admission limits if you
// want to see shedding):
//
//	fmore-loadgen -target http://localhost:8780 -scenario baseline -rate 500
//	fmore-loadgen -target http://localhost:8780 -scenario spike
//	fmore-loadgen -target http://localhost:8780 -scenario soak
//	fmore-loadgen -target http://localhost:8780 -scenario stress
//
// Scenarios:
//
//	baseline  fixed -rate for -duration; the steady-state numbers
//	spike     1/4 rate, then a 4x burst, then back; proves recovery
//	soak      -rate for 3x -duration; drift and leak check
//	stress    step-ramp x1.5 per step until served < 90% of the step's
//	          target rate (catches shedding and saturation alike);
//	          prints the last sustained step and the breaking point
//	chaos     spawns its own two-replica cluster + router from real
//	          binaries (-exchange-bin/-router-bin required; -target is
//	          ignored), injects storage faults via FMORE_FAILPOINTS
//	          (ENOSPC during compaction, a torn EIO frame write), then
//	          kill -9s the degraded replica and restarts it — asserting
//	          clean ENOSPC absorption, the 503 durability_lost degraded
//	          contract, router steer-away, and that no outcome acked
//	          before the failure is missing or altered after recovery:
//
//	          fmore-loadgen -scenario chaos \
//	              -exchange-bin ./fmore-exchange -router-bin ./fmore-router
//
// Every scenario creates its own job, runs a closer goroutine that closes
// rounds continuously (closes must never shed — any 429 on a close fails
// the run), samples GET /v1/healthz on a 250ms cadence, and prints one
// RESULT line per step:
//
//	RESULT scenario=spike step=burst offered_qps=2000 served_qps=1423 ...
//
// Exit status is non-zero if any round close failed or stalled, which is
// the invariant the admission subsystem exists to protect.
package main

import "log"

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

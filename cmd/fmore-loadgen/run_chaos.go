//go:build loadtest

package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"fmore/internal/partition"
)

// The chaos scenario spawns its own two-replica cluster (plus router) from
// real binaries so it can inject storage faults via FMORE_FAILPOINTS and
// kill -9 a replica mid-load. It proves the degraded-mode contract end to
// end:
//
//   - an ENOSPC during compaction preallocation is absorbed: the replica
//     stays healthy, retries, and keeps serving;
//   - a torn frame write (EIO) flips the replica to degraded — durable
//     writes refused with 503 durability_lost, reads still served, healthz
//     503 so the router steers bid traffic to the healthy replica;
//   - after kill -9 and a clean restart, no outcome acknowledged before the
//     failure is missing, and every recovered outcome is byte-identical to
//     what the replica served before the crash.
var (
	chaosExchangeBin = flag.String("exchange-bin", "", "fmore-exchange binary for the chaos scenario")
	chaosRouterBin   = flag.String("router-bin", "", "fmore-router binary for the chaos scenario")
)

// chaosAckGrace is the window before the observed degraded flip whose acks
// are exempt from the recovery invariant: round closes are acknowledged
// after the in-memory apply with the WAL record in the group-commit queue,
// so acks racing the first storage error may never reach the file. Acks
// older than this must survive kill -9 bit-for-bit.
const chaosAckGrace = time.Second

var chaosListenRe = regexp.MustCompile(`listening on ([^ ]+) `)

type chaosProc struct {
	url  string
	cmd  *exec.Cmd
	stop func()
}

// startChaosProc launches one service binary, scrapes its resolved listen
// address, and keeps draining its stderr so it never blocks on the pipe.
func startChaosProc(bin string, extraEnv []string, args ...string) (*chaosProc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), extraEnv...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &chaosProc{cmd: cmd}
	var once sync.Once
	p.stop = func() {
		once.Do(func() {
			_ = cmd.Process.Signal(syscall.SIGTERM)
			done := make(chan struct{})
			go func() { _ = cmd.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				_ = cmd.Process.Kill()
				<-done
			}
		})
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := chaosListenRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p.url = "http://" + addr
		return p, nil
	case <-time.After(15 * time.Second):
		p.stop()
		return nil, fmt.Errorf("%s never logged its listen address", bin)
	}
}

// chaosFreePort reserves an ephemeral port and releases it: the partition
// map embeds replica URLs, so ports must be known before the replicas start
// (and survive a replica restart).
func chaosFreePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close() //nolint:errcheck // released for reuse
	return l.Addr().(*net.TCPAddr).Port, nil
}

func runChaos(c config) error {
	if *chaosExchangeBin == "" || *chaosRouterBin == "" {
		return errors.New("chaos scenario needs -exchange-bin and -router-bin (it spawns its own cluster)")
	}
	if err := chaosENOSPC(c); err != nil {
		return fmt.Errorf("chaos phase enospc: %w", err)
	}
	if err := chaosDegrade(c); err != nil {
		return fmt.Errorf("chaos phase degrade: %w", err)
	}
	return nil
}

// chaosENOSPC: disk-full during compaction preallocation must abort the
// compaction, not the replica — healthz stays ok, the size/interval trigger
// re-arms, and the retry (space "freed": the failpoint fires once) lands a
// snapshot.
func chaosENOSPC(c config) error {
	dir, err := os.MkdirTemp("", "fmore-chaos-enospc-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir) //nolint:errcheck // best-effort cleanup
	p0, err := startChaosProc(*chaosExchangeBin,
		[]string{"FMORE_FAILPOINTS=wal/prealloc=enospc@1"},
		"-addr", "127.0.0.1:0", "-data-dir", dir, "-snapshot-interval", "500ms")
	if err != nil {
		return err
	}
	defer p0.stop()

	const job = "chaos-enospc"
	if err := chaosCreateJob(p0.url, job); err != nil {
		return err
	}
	deadline := time.Now().Add(4 * time.Second)
	rounds, unhealthy := 0, 0
	for time.Now().Before(deadline) {
		for n := 0; n < 4; n++ {
			_, _, _ = chaosPost(p0.url+"/v1/jobs/"+job+"/bids",
				fmt.Sprintf(`{"node_id":%d,"qualities":[0.5,0.5],"payment":0.1}`, rounds*4+n))
		}
		if st, _, err := chaosPost(p0.url+"/v1/jobs/"+job+"/close", ""); err == nil && st == http.StatusOK {
			rounds++
		}
		if st, _, err := chaosGet(p0.url + "/v1/healthz"); err == nil && st != http.StatusOK {
			unhealthy++
		}
		time.Sleep(50 * time.Millisecond)
	}
	if unhealthy > 0 {
		return fmt.Errorf("healthz flipped unhealthy %d times under a clean compaction abort", unhealthy)
	}
	if rounds == 0 {
		return errors.New("no round ever closed")
	}
	var m struct {
		WalFailed         bool  `json:"wal_failed"`
		WalSnapshots      int64 `json:"wal_snapshots"`
		WalSnapshotErrors int64 `json:"wal_snapshot_errors"`
	}
	if _, body, err := chaosGet(p0.url + "/v1/metrics"); err != nil {
		return err
	} else if err := json.Unmarshal(body, &m); err != nil {
		return err
	}
	if m.WalSnapshotErrors < 1 {
		return fmt.Errorf("injected ENOSPC never surfaced (wal_snapshot_errors=%d)", m.WalSnapshotErrors)
	}
	if m.WalFailed {
		return errors.New("clean compaction abort left the replica degraded")
	}
	if m.WalSnapshots < 1 {
		return fmt.Errorf("compaction never recovered after the aborted attempt (wal_snapshots=%d)", m.WalSnapshots)
	}
	log.Printf("RESULT scenario=chaos phase=enospc rounds=%d snapshot_errors=%d snapshots=%d healthz=ok",
		rounds, m.WalSnapshotErrors, m.WalSnapshots)
	return nil
}

// chaosDegrade is the main act: torn-write EIO on one replica of a routed
// pair, steer-away, kill -9, byte-identical recovery.
func chaosDegrade(c config) error {
	port0, err := chaosFreePort()
	if err != nil {
		return err
	}
	port1, err := chaosFreePort()
	if err != nil {
		return err
	}
	url0 := fmt.Sprintf("http://127.0.0.1:%d", port0)
	url1 := fmt.Sprintf("http://127.0.0.1:%d", port1)
	spec := fmt.Sprintf("p0=%s,p1=%s", url0, url1)
	m, err := partition.Parse(spec)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "fmore-chaos-degrade-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir) //nolint:errcheck // best-effort cleanup

	startReplica := func(part string, port int, env []string) (*chaosProc, error) {
		return startChaosProc(*chaosExchangeBin, env,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port), "-data-dir", dir,
			"-partition", part, "-partition-map", spec)
	}
	// p0's 60th batch write tears after 9 bytes and the error sticks: a
	// healthy run of durably acknowledged rounds first, then the fault.
	p0, err := startReplica("p0", port0, []string{"FMORE_FAILPOINTS=wal/write=torn:9@60+"})
	if err != nil {
		return err
	}
	defer p0.stop()
	p1, err := startReplica("p1", port1, nil)
	if err != nil {
		return err
	}
	defer p1.stop()
	rt, err := startChaosProc(*chaosRouterBin, nil, "-addr", "127.0.0.1:0", "-replicas", spec)
	if err != nil {
		return err
	}
	defer rt.stop()

	job0, job1 := chaosOwnedJob(m, "p0"), chaosOwnedJob(m, "p1")
	for _, j := range []string{job0, job1} {
		if err := chaosCreateJob(rt.url, j); err != nil {
			return err
		}
	}

	// Closer loops ack rounds and remember when; the bid pump feeds them.
	type ack struct {
		at    time.Time
		round int
	}
	var mu sync.Mutex
	acked := map[string][]ack{} // job -> acks in order
	var job1PostFlip atomic.Int64
	var flipped atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, j := range []string{job0, job1} {
		wg.Add(2)
		go func(j string) { // bid pump
			defer wg.Done()
			node := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				node++
				// 429 (steered away) and 503 (degraded) are expected fates
				// once p0 fails; the invariant is about acked closes.
				_, _, _ = chaosPost(rt.url+"/v1/jobs/"+j+"/bids",
					fmt.Sprintf(`{"node_id":%d,"qualities":[0.5,0.5],"payment":0.1}`, node%4096))
				time.Sleep(5 * time.Millisecond)
			}
		}(j)
		go func(j string) { // closer
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(40 * time.Millisecond):
				}
				st, body, err := chaosPost(rt.url+"/v1/jobs/"+j+"/close", "")
				if err != nil || st != http.StatusOK {
					continue
				}
				var out struct {
					Round int `json:"round"`
				}
				if json.Unmarshal(body, &out) != nil || out.Round == 0 {
					continue
				}
				mu.Lock()
				acked[j] = append(acked[j], ack{at: time.Now(), round: out.Round})
				mu.Unlock()
				if j == job1 && flipped.Load() {
					job1PostFlip.Add(1)
				}
			}
		}(j)
	}

	// Wait for p0's healthz to flip to degraded.
	var flipTime time.Time
	flipDeadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(flipDeadline) {
			close(stop)
			wg.Wait()
			return errors.New("p0 never reported degraded despite the torn-write injection")
		}
		st, body, err := chaosGet(url0 + "/v1/healthz")
		if err == nil && st == http.StatusServiceUnavailable && strings.Contains(string(body), `"degraded"`) {
			flipTime = time.Now()
			flipped.Store(true)
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Printf("chaos: p0 degraded, checking steer-away")

	// Degraded contract at the replica: durable writes refused with
	// durability_lost, reads still served.
	if st, body, err := chaosPost(url0+"/v1/jobs/"+job0+"/bids", `{"node_id":1,"qualities":[0.5,0.5],"payment":0.1}`); err != nil ||
		st != http.StatusServiceUnavailable || !strings.Contains(string(body), "durability_lost") {
		close(stop)
		wg.Wait()
		return fmt.Errorf("degraded p0 bid answer = %d %s, want 503 durability_lost", st, body)
	}
	if st, _, err := chaosGet(url0 + "/v1/jobs/" + job0 + "/outcomes"); err != nil || st != http.StatusOK {
		close(stop)
		wg.Wait()
		return fmt.Errorf("degraded p0 refused a read: %d %v", st, err)
	}
	// Steer-away at the router: once its probe sees the 503, sheddable bid
	// POSTs for p0's partition are refused instead of forwarded.
	steered := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(200 * time.Millisecond) {
		st, _, err := chaosPost(rt.url+"/v1/jobs/"+job0+"/bids", `{"node_id":2,"qualities":[0.5,0.5],"payment":0.1}`)
		if err == nil && st == http.StatusTooManyRequests {
			steered = true
			break
		}
	}
	// The healthy replica must keep acking through the router meanwhile.
	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()
	if !steered {
		return errors.New("router never steered bid traffic away from the degraded replica")
	}
	if job1PostFlip.Load() == 0 {
		return errors.New("healthy replica stopped acking closes after its peer degraded")
	}

	// Snapshot what the degraded replica serves, then kill it for real.
	mu.Lock()
	acks0 := append([]ack(nil), acked[job0]...)
	mu.Unlock()
	if len(acks0) == 0 {
		return errors.New("no round was ever acked on the faulted replica")
	}
	preKill := map[int][]byte{}
	for _, a := range acks0 {
		if st, body, err := chaosGet(fmt.Sprintf("%s/v1/jobs/%s/outcome?round=%d", url0, job0, a.round)); err == nil && st == http.StatusOK {
			preKill[a.round] = body
		}
	}
	_ = p0.cmd.Process.Kill() // kill -9
	p0.stop()                 // reap

	p0, err = startReplica("p0", port0, nil) // healthy disk this time
	if err != nil {
		return fmt.Errorf("restarting p0: %w", err)
	}
	defer p0.stop()
	if st, _, err := chaosGet(url0 + "/v1/healthz"); err != nil || st != http.StatusOK {
		return fmt.Errorf("restarted p0 healthz = %d (%v), want 200", st, err)
	}

	// The recovery invariant: every outcome acked before the grace window
	// is present and byte-identical; anything else that survived must be
	// byte-identical too (recovery may keep a late round, never corrupt one).
	cutoff := flipTime.Add(-chaosAckGrace)
	verified, inGrace := 0, 0
	for _, a := range acks0 {
		st, body, err := chaosGet(fmt.Sprintf("%s/v1/jobs/%s/outcome?round=%d", url0, job0, a.round))
		if err != nil {
			return fmt.Errorf("reading recovered round %d: %w", a.round, err)
		}
		if st != http.StatusOK {
			if a.at.Before(cutoff) {
				return fmt.Errorf("acknowledged round %d (acked %s before the failure) missing after recovery",
					a.round, flipTime.Sub(a.at))
			}
			inGrace++
			continue
		}
		if want, ok := preKill[a.round]; ok && string(body) != string(want) {
			return fmt.Errorf("round %d diverged across crash recovery", a.round)
		}
		verified++
	}
	log.Printf("RESULT scenario=chaos phase=degrade acked=%d verified_identical=%d lost_in_grace_window=%d steered=%v healthy_peer_acks_post_flip=%d",
		len(acks0), verified, inGrace, steered, job1PostFlip.Load())
	return nil
}

func chaosOwnedJob(m *partition.Map, part string) string {
	for i := 0; i < 65536; i++ {
		id := fmt.Sprintf("chaos-%d", i)
		if m.Owns(part, id) {
			return id
		}
	}
	return ""
}

func chaosCreateJob(base, id string) error {
	st, body, err := chaosPost(base+"/v1/jobs",
		fmt.Sprintf(`{"id":%q,"k":2,"seed":7,"keep_outcomes":1024,"rule":{"kind":"additive","alpha":[0.6,0.4]}}`, id))
	if err != nil {
		return fmt.Errorf("creating %s: %w", id, err)
	}
	if st >= 300 && st != http.StatusConflict {
		return fmt.Errorf("creating %s: HTTP %d %s", id, st, body)
	}
	return nil
}

var chaosHC = &http.Client{Timeout: 10 * time.Second}

func chaosPost(url, body string) (int, []byte, error) {
	resp, err := chaosHC.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close() //nolint:errcheck // read below
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

func chaosGet(url string) (int, []byte, error) {
	resp, err := chaosHC.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close() //nolint:errcheck // read below
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

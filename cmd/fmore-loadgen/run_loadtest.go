//go:build loadtest

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/bits"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The harness is open-loop: bids are fired on a fixed schedule derived
// from the offered rate, regardless of how fast the exchange answers, so
// an overloaded exchange sees true queueing pressure instead of the
// closed-loop self-throttling that hides capacity cliffs.

type config struct {
	target   string
	scenario string
	rate     float64
	duration time.Duration
	workers  int
	nodes    int
	job      string
}

func run() error {
	var cfg config
	flag.StringVar(&cfg.target, "target", "http://localhost:8780", "base URL of the exchange under test")
	flag.StringVar(&cfg.scenario, "scenario", "baseline", "baseline | spike | soak | stress | chaos | all")
	flag.Float64Var(&cfg.rate, "rate", 500, "offered bids/sec for baseline/soak; starting step for stress")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "base step duration (soak runs 3x this)")
	flag.IntVar(&cfg.workers, "workers", 32, "concurrent submitter goroutines")
	flag.IntVar(&cfg.nodes, "nodes", 65536, "distinct node IDs the submitters cycle through")
	flag.StringVar(&cfg.job, "job", "", "job ID to create and drive (default loadgen-<scenario>)")
	flag.Parse()

	scenarios := []string{cfg.scenario}
	if cfg.scenario == "all" {
		scenarios = []string{"baseline", "spike", "soak", "stress"}
	}
	failed := false
	for _, sc := range scenarios {
		c := cfg
		c.scenario = sc
		if c.job == "" || cfg.scenario == "all" {
			c.job = "loadgen-" + sc
		}
		var err error
		if sc == "chaos" {
			// Chaos spawns its own faulted cluster; -target is unused.
			err = runChaos(c)
		} else {
			err = runScenario(c)
		}
		if err != nil {
			log.Printf("FAIL scenario=%s: %v", sc, err)
			failed = true
		}
	}
	if failed {
		return errors.New("one or more scenarios violated the round-close invariant")
	}
	return nil
}

// step is one constant-rate segment of a scenario.
type step struct {
	name string
	rate float64
	dur  time.Duration
}

func scenarioSteps(c config) []step {
	switch c.scenario {
	case "baseline":
		return []step{{"steady", c.rate, c.duration}}
	case "spike":
		quarter := c.duration / 4
		return []step{
			{"calm", c.rate / 4, quarter},
			{"burst", c.rate * 4, quarter * 2},
			{"recover", c.rate / 4, quarter},
		}
	case "soak":
		return []step{{"soak", c.rate, 3 * c.duration}}
	case "stress":
		// Steps are generated on the fly by runStress.
		return nil
	}
	return nil
}

func runScenario(c config) error {
	log.Printf("scenario=%s target=%s job=%s rate=%.0f duration=%s workers=%d nodes=%d",
		c.scenario, c.target, c.job, c.rate, c.duration, c.workers, c.nodes)
	d := newDriver(c)
	if err := d.createJob(); err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var bg sync.WaitGroup
	bg.Add(2)
	go func() { defer bg.Done(); d.closerLoop(ctx) }()
	go func() { defer bg.Done(); d.healthzLoop(ctx) }()

	var err error
	if c.scenario == "stress" {
		err = d.runStress(c)
	} else {
		for _, st := range scenarioSteps(c) {
			d.runStep(c, st)
		}
	}
	cancel()
	bg.Wait()
	if err != nil {
		return err
	}
	return d.closeInvariant()
}

// driver owns one scenario's connections and background loops.
type driver struct {
	c  config
	hc *http.Client

	nodeSeq atomic.Int64

	// Closer-loop health: the invariant under test.
	closes       atomic.Int64
	closeShed    atomic.Int64 // 429 on a close — must stay 0
	closeErrs    atomic.Int64 // non-quorum close failures — must stay 0
	closeHist    hist         // close request latency
	lastCloseOK  atomic.Int64 // unix nanos of the last successful close round-trip
	maxCloseGapN atomic.Int64 // widest observed gap between successful closes

	// Healthz sampling.
	hzOK       atomic.Int64
	hzOver     atomic.Int64
	hzFlips    atomic.Int64
	hzLastOver atomic.Bool
}

func newDriver(c config) *driver {
	tr := &http.Transport{
		MaxIdleConns:        c.workers + 8,
		MaxIdleConnsPerHost: c.workers + 8,
	}
	return &driver{c: c, hc: &http.Client{Transport: tr, Timeout: 30 * time.Second}}
}

func (d *driver) createJob() error {
	spec := fmt.Sprintf(`{"id":%q,"k":2,"seed":7,"keep_outcomes":16,"rule":{"kind":"additive","alpha":[0.6,0.4]}}`, d.c.job)
	resp, err := d.hc.Post(d.c.target+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return fmt.Errorf("creating job: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 && resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("creating job: HTTP %d", resp.StatusCode)
	}
	return nil
}

// closerLoop closes the job's round every 100ms for the whole scenario.
// Closes are on the admission never-shed list: a 429 here, or any failure
// other than below_quorum (an empty round), is an invariant violation.
func (d *driver) closerLoop(ctx context.Context) {
	d.lastCloseOK.Store(time.Now().UnixNano())
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		start := time.Now()
		resp, err := d.hc.Post(d.c.target+"/v1/jobs/"+d.c.job+"/close", "application/json", nil)
		if err != nil {
			d.closeErrs.Add(1)
			continue
		}
		var env struct {
			Code string `json:"code"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			d.closes.Add(1)
		case resp.StatusCode == http.StatusTooManyRequests:
			d.closeShed.Add(1)
			continue
		case env.Code == "below_quorum":
			// An empty round is fine; it still proves the close path answers.
		default:
			d.closeErrs.Add(1)
			continue
		}
		now := time.Now()
		d.closeHist.observe(now.Sub(start))
		if gap := now.UnixNano() - d.lastCloseOK.Swap(now.UnixNano()); gap > d.maxCloseGapN.Load() {
			d.maxCloseGapN.Store(gap)
		}
	}
}

func (d *driver) healthzLoop(ctx context.Context) {
	t := time.NewTicker(250 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		resp, err := d.hc.Get(d.c.target + "/v1/healthz")
		if err != nil {
			continue
		}
		resp.Body.Close()
		over := resp.StatusCode == http.StatusServiceUnavailable
		if over {
			d.hzOver.Add(1)
		} else {
			d.hzOK.Add(1)
		}
		if d.hzLastOver.Swap(over) != over {
			d.hzFlips.Add(1)
		}
	}
}

// stepResult is what one constant-rate segment measured.
type stepResult struct {
	offered, served, shed, errs int64
	elapsed                     time.Duration
	lat                         *hist
}

func (r stepResult) offeredQPS() float64 { return float64(r.offered) / r.elapsed.Seconds() }
func (r stepResult) servedQPS() float64  { return float64(r.served) / r.elapsed.Seconds() }

// runStep fires bids open-loop at st.rate for st.dur and reports.
func (d *driver) runStep(c config, st step) stepResult {
	interval := time.Duration(float64(time.Second) / st.rate)
	start := time.Now()
	deadline := start.Add(st.dur)
	var slot atomic.Int64 // next schedule slot to claim
	var served, shed, errs, offered atomic.Int64
	lat := &hist{}

	var wg sync.WaitGroup
	for w := 0; w < c.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := make([]byte, 0, 128)
			for {
				when := start.Add(time.Duration(slot.Add(1)-1) * interval)
				// Stop at the schedule's end, and also at the wall-clock
				// deadline: when the system can't absorb the offered rate
				// the backlog of past-due slots is unbounded, and burning
				// through it would stretch the step far past its duration.
				// The undelivered backlog shows up as offered_qps below the
				// step's target rate, which is exactly the saturation signal
				// the stress ramp looks for.
				if when.After(deadline) || time.Now().After(deadline) {
					return
				}
				if wait := time.Until(when); wait > 0 {
					time.Sleep(wait)
				}
				offered.Add(1)
				node := d.nodeSeq.Add(1) % int64(c.nodes)
				q := 0.2 + float64(node%700)/1000
				body = body[:0]
				body = fmt.Appendf(body, `{"node_id":%d,"qualities":[%.3f,%.3f],"payment":0.1}`, node, q, 1.0-q/2)
				t0 := time.Now()
				resp, err := d.hc.Post(d.c.target+"/v1/jobs/"+d.c.job+"/bids", "application/json", bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				lat.observe(time.Since(t0))
				drain(resp)
				switch resp.StatusCode {
				case http.StatusAccepted, http.StatusOK:
					served.Add(1)
				case http.StatusTooManyRequests:
					shed.Add(1)
				case http.StatusConflict:
					// duplicate_bid from node-ID reuse inside one round:
					// the submit reached the auction, count it served.
					served.Add(1)
				default:
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	res := stepResult{
		offered: offered.Load(), served: served.Load(), shed: shed.Load(),
		errs: errs.Load(), elapsed: time.Since(start), lat: lat,
	}
	hzTotal := d.hzOK.Load() + d.hzOver.Load()
	log.Printf("RESULT scenario=%s step=%s offered_qps=%.0f served_qps=%.0f shed=%d errors=%d "+
		"p50_ms=%.1f p99_ms=%.1f closes=%d close_shed=%d close_errs=%d max_close_gap_ms=%d "+
		"healthz_overloaded=%d/%d flips=%d",
		c.scenario, st.name, res.offeredQPS(), res.servedQPS(), res.shed, res.errs,
		res.lat.quantile(0.50).Seconds()*1e3, res.lat.quantile(0.99).Seconds()*1e3,
		d.closes.Load(), d.closeShed.Load(), d.closeErrs.Load(), d.maxCloseGapN.Load()/1e6,
		d.hzOver.Load(), hzTotal, d.hzFlips.Load())
	return res
}

// runStress ramps the offered rate x1.5 per step until the exchange serves
// less than 90% of the step's TARGET rate, then prints the capacity claim:
// the last sustained step and the step that broke. Judging against the
// target (not the measured offered rate) catches both failure modes: the
// exchange shedding (served < offered) and the whole system saturating so
// the open-loop schedule itself falls behind (offered < target).
func (d *driver) runStress(c config) error {
	rate := c.rate
	var lastSustained float64
	for i := 0; i < 24; i++ {
		res := d.runStep(c, step{name: fmt.Sprintf("ramp-%d", i), rate: rate, dur: c.duration})
		if res.servedQPS() < 0.9*rate {
			log.Printf("RESULT scenario=stress summary=capacity max_sustained_qps=%.0f breaking_qps=%.0f served_at_break_qps=%.0f",
				lastSustained, res.offeredQPS(), res.servedQPS())
			return nil
		}
		lastSustained = res.servedQPS()
		rate *= 1.5
	}
	log.Printf("RESULT scenario=stress summary=capacity max_sustained_qps=%.0f breaking_qps=NaN (ramp exhausted)", lastSustained)
	return nil
}

// closeInvariant is the pass/fail gate: the closer loop must have run,
// never been shed, and never failed.
func (d *driver) closeInvariant() error {
	if d.closeShed.Load() > 0 {
		return fmt.Errorf("%d round closes were shed with 429 — closes are on the never-shed list", d.closeShed.Load())
	}
	if d.closeErrs.Load() > 0 {
		return fmt.Errorf("%d round closes failed", d.closeErrs.Load())
	}
	if d.closes.Load() == 0 {
		return errors.New("no round ever closed — the closer loop stalled")
	}
	return nil
}

func drain(resp *http.Response) {
	buf := make([]byte, 512)
	for {
		if _, err := resp.Body.Read(buf); err != nil {
			break
		}
	}
	resp.Body.Close()
}

// hist is a lock-free log-bucketed latency histogram: bucket i holds
// samples in [2^i, 2^(i+1)) microseconds, which gives ~2x resolution from
// 1µs to over a minute in 27 counters.
type hist struct {
	buckets [27]atomic.Int64
	count   atomic.Int64
}

func (h *hist) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	i := bits.Len64(uint64(us)) - 1
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
}

// quantile returns the upper bound of the bucket containing quantile q.
func (h *hist) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum > target {
			return time.Duration(int64(1)<<(i+1)) * time.Microsecond
		}
	}
	return time.Duration(int64(1)<<len(h.buckets)) * time.Microsecond
}

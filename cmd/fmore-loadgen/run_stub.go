//go:build !loadtest

package main

import "errors"

// run in the untagged build only explains how to get the real harness;
// keeping the stub in the default build means `go build ./...` always
// compiles the package without dragging the load driver into normal
// builds.
func run() error {
	return errors.New("fmore-loadgen: built without the loadtest tag; rebuild with `go build -tags loadtest ./cmd/fmore-loadgen`")
}

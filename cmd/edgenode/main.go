// Command edgenode runs one standalone FMore edge node in one of two
// transports behind the same bidding logic:
//
// Exchange mode (-exchange-url): the node speaks the exchange's versioned
// /v1 HTTP API through the pkg/client SDK. It registers, fetches the job's
// solved Theorem 1 bid curve from the server (falling back to a local solve
// only when the job carries no equilibrium spec), subscribes to the
// server-push round event stream, and bids into every round it sees —
// learning outcomes the moment they close instead of long-polling:
//
//	edgenode -exchange-url http://localhost:8780 -job demo -id 3 -rounds 5
//
// Legacy TCP mode (default): the original gob/TCP aggregator protocol
// (cmd/aggregator) with local data generation and federated training. The
// gob dialect is kept as an optional transport; new deployments should
// front an exchange:
//
//	edgenode -addr localhost:9000 -id 0 -task mnist-o -data 200 &
//	edgenode -addr localhost:9000 -id 1 -task mnist-o -data 120 &
//	edgenode -addr localhost:9000 -id 2 -task mnist-o -data  80 &
//	edgenode -addr localhost:9000 -id 3 -task mnist-o -data  60
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"fmore/internal/auction"
	"fmore/internal/data"
	"fmore/internal/dist"
	"fmore/internal/ml"
	"fmore/internal/transport"
	"fmore/pkg/client"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "edgenode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("edgenode", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:9000", "aggregator address")
	id := fs.Int("id", 0, "node id (unique per node)")
	taskName := fs.String("task", "mnist-o", "workload: mnist-o, mnist-f, cifar-10, hpnews")
	dataSize := fs.Int("data", 150, "local dataset size")
	cpu := fs.Float64("cpu", 4, "offered CPU cores (1-8)")
	bandwidth := fs.Float64("bw", 50, "offered bandwidth in Mbps (5-100)")
	seed := fs.Int64("seed", 1, "shared experiment seed")
	epochs := fs.Int("epochs", 1, "local epochs per won round")
	theta := fs.Float64("theta", 0, "private cost parameter (0 = draw randomly)")
	nBidders := fs.Int("bidders", 4, "expected number of competing bidders (for the equilibrium)")
	k := fs.Int("k", 2, "expected number of winners (for the equilibrium)")
	exchangeURL := fs.String("exchange-url", "",
		"exchange base URL (e.g. http://localhost:8780); switches from the gob/TCP aggregator protocol to the /v1 HTTP API")
	jobID := fs.String("job", "", "exchange job to bid into (exchange mode)")
	rounds := fs.Int("rounds", 0, "rounds to participate in before exiting (exchange mode; 0 = until the job closes)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *exchangeURL != "" {
		return runExchange(exchangeConfig{
			url:      *exchangeURL,
			jobID:    *jobID,
			nodeID:   *id,
			rounds:   *rounds,
			theta:    *theta,
			seed:     *seed,
			cpu:      *cpu,
			bw:       *bandwidth,
			dataSize: *dataSize,
			nBidders: *nBidders,
			k:        *k,
		})
	}

	task, err := parseTask(*taskName)
	if err != nil {
		return err
	}
	// Private local data: node-specific seed keeps shards distinct across
	// nodes and distinct from the aggregator's test set.
	corpus, err := data.GenerateTask(task, *dataSize, data.NumClasses, *seed+1000+int64(*id))
	if err != nil {
		return err
	}
	model, err := buildModel(task, rand.New(rand.NewSource(*seed+2000+int64(*id))))
	if err != nil {
		return err
	}

	// Equilibrium strategy for the deployment market (additive rule
	// 0.4/0.3/0.3 over normalized CPU/bandwidth/data, as in §V-A).
	strategy, err := solveLocalStrategy(*nBidders, *k)
	if err != nil {
		return err
	}
	myTheta := drawTheta(*theta, *seed, *id)

	qualities := []float64{*cpu / 8, *bandwidth / 100, float64(*dataSize) / 10000}
	fmt.Printf("node %d: θ=%.3f data=%d bidding p=%.4f q=%.3v\n",
		*id, myTheta, *dataSize, strategy.Payment(myTheta), qualities)

	summary, err := transport.RunClient(transport.ClientConfig{
		Addr:        *addr,
		NodeID:      *id,
		Model:       model,
		Local:       corpus.Train,
		Qualities:   func(int) []float64 { return qualities },
		Payment:     func(int) float64 { return strategy.Payment(myTheta) },
		LocalEpochs: *epochs,
		Seed:        *seed + 4000 + int64(*id),
	})
	if err != nil {
		return err
	}
	fmt.Printf("node %d: rounds=%d won=%d earned=%.4f final-accuracy=%.4f\n",
		*id, summary.RoundsSeen, summary.RoundsWon, summary.TotalEarned, summary.FinalAccuracy)
	return nil
}

// solveLocalStrategy runs the Theorem 1 solver for the deployment market
// (additive 0.4/0.3/0.3 over normalized CPU/bandwidth/data, linear cost,
// θ ~ U[0.5, 1.5]). The TCP path always solves locally; the exchange path
// only falls back here when the job serves no strategy.
func solveLocalStrategy(nBidders, k int) (*auction.Strategy, error) {
	rule, err := auction.NewAdditive(0.4, 0.3, 0.3)
	if err != nil {
		return nil, err
	}
	cost, err := auction.NewLinearCost(0.1, 0.1, 0.1)
	if err != nil {
		return nil, err
	}
	thetaDist, err := dist.NewUniform(0.5, 1.5)
	if err != nil {
		return nil, err
	}
	return auction.SolveEquilibrium(auction.EquilibriumConfig{
		Rule: rule, Cost: cost, Theta: thetaDist,
		N: nBidders, K: k,
		QLo: []float64{0, 0, 0}, QHi: []float64{1, 1, 1},
		ThetaGridPoints: 65, QualityGridPoints: 24,
	})
}

// drawTheta returns the node's private cost parameter: the explicit flag
// value, or a seeded draw from the market's θ distribution.
func drawTheta(theta float64, seed int64, id int) float64 {
	if theta != 0 {
		return theta
	}
	thetaDist, err := dist.NewUniform(0.5, 1.5)
	if err != nil {
		panic(err) // constants; cannot fail
	}
	return thetaDist.Sample(rand.New(rand.NewSource(seed + 3000 + int64(id))))
}

// exchangeConfig parameterizes exchange-mode participation.
type exchangeConfig struct {
	url, jobID     string
	nodeID, rounds int
	theta          float64
	seed           int64
	cpu, bw        float64
	dataSize       int
	nBidders, k    int
}

// runExchange participates in a hosted exchange job over the /v1 API: it
// registers, obtains a bid (the job's server-solved strategy curve when
// available, a local solve otherwise), and rides the server-push event
// stream — bidding on every round_open, settling on every round_closed.
func runExchange(cfg exchangeConfig) error {
	if cfg.jobID == "" {
		return errors.New("exchange mode needs -job")
	}
	c, err := client.New(cfg.url)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if err := c.Register(ctx, cfg.nodeID, fmt.Sprintf("edgenode-%d", cfg.nodeID)); err != nil {
		return fmt.Errorf("registering: %w", err)
	}
	job, err := c.Job(ctx, cfg.jobID)
	if err != nil {
		return fmt.Errorf("resolving job: %w", err)
	}
	myTheta := cfg.theta

	var makeBid func() client.Bid
	if bidder, err := c.NewBidder(ctx, cfg.jobID, cfg.nodeID, myTheta); err == nil {
		if myTheta == 0 {
			// Draw the private type from the game's own θ support (the
			// curve advertises it) rather than the deployment default, so
			// the equilibrium bid is interior, not clamped to an endpoint.
			s := bidder.Strategy()
			u := rand.New(rand.NewSource(cfg.seed + 3000 + int64(cfg.nodeID))).Float64()
			myTheta = s.ThetaLo + u*(s.ThetaHi-s.ThetaLo)
			bidder = bidder.WithTheta(myTheta)
		}
		fmt.Printf("node %d: θ=%.3f bidding the exchange-solved strategy (p=%.4f)\n",
			cfg.nodeID, myTheta, bidder.Bid().Payment)
		makeBid = bidder.Bid
	} else if client.ErrorCode(err) == client.CodeNoStrategy {
		myTheta = drawTheta(cfg.theta, cfg.seed, cfg.nodeID)
		strategy, serr := solveLocalStrategy(cfg.nBidders, cfg.k)
		if serr != nil {
			return serr
		}
		qualities := []float64{cfg.cpu / 8, cfg.bw / 100, float64(cfg.dataSize) / 10000}
		payment := strategy.Payment(myTheta)
		fmt.Printf("node %d: θ=%.3f job has no strategy endpoint; solved locally (p=%.4f)\n",
			cfg.nodeID, myTheta, payment)
		makeBid = func() client.Bid {
			return client.Bid{NodeID: cfg.nodeID, Qualities: qualities, Payment: payment}
		}
	} else {
		return fmt.Errorf("fetching strategy: %w", err)
	}

	// Watch from the currently collecting round: the stream opens with a
	// round_open for it, which triggers the first bid; older history is not
	// replayed (this node was not part of it).
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	watch, err := c.WatchRounds(wctx, cfg.jobID, client.WatchOptions{AfterRound: job.Round - 1})
	if err != nil {
		return fmt.Errorf("watching rounds: %w", err)
	}
	seen, won := 0, 0
	earned := 0.0
	for ev := range watch.Events() {
		switch ev.Type {
		case client.RoundOpen:
			if _, err := c.SubmitBid(ctx, cfg.jobID, makeBid()); err != nil &&
				client.ErrorCode(err) != client.CodeDuplicateBid {
				fmt.Printf("node %d: round %d bid rejected: %v\n", cfg.nodeID, ev.Round, err)
			}
		case client.RoundClosed:
			seen++
			if ev.Outcome.Error != "" {
				fmt.Printf("node %d: round %d failed: %s\n", cfg.nodeID, ev.Round, ev.Outcome.Error)
			} else if p, ok := ev.Outcome.Won(cfg.nodeID); ok {
				won++
				earned += p
				fmt.Printf("node %d: round %d WON, paid %.4f\n", cfg.nodeID, ev.Round, p)
			} else {
				fmt.Printf("node %d: round %d lost (%d bids)\n", cfg.nodeID, ev.Round, ev.Outcome.NumBids)
			}
			if cfg.rounds > 0 && seen >= cfg.rounds {
				cancel()
			}
		case client.JobClosed:
			fmt.Printf("node %d: job %s closed\n", cfg.nodeID, cfg.jobID)
		}
	}
	if err := watch.Err(); err != nil {
		return fmt.Errorf("event stream: %w", err)
	}
	fmt.Printf("node %d: rounds=%d won=%d earned=%.4f\n", cfg.nodeID, seen, won, earned)
	return nil
}

func parseTask(s string) (data.TaskKind, error) {
	switch s {
	case "mnist-o":
		return data.MNISTO, nil
	case "mnist-f":
		return data.MNISTF, nil
	case "cifar-10", "cifar":
		return data.CIFAR10, nil
	case "hpnews":
		return data.HPNews, nil
	default:
		return 0, fmt.Errorf("unknown task %q", s)
	}
}

func buildModel(kind data.TaskKind, rng *rand.Rand) (ml.Classifier, error) {
	switch kind {
	case data.MNISTO, data.MNISTF:
		return ml.NewImageCNN(ml.MNISTCNNConfig(data.ImageSize, data.ImageSize), rng)
	case data.CIFAR10:
		return ml.NewImageCNN(ml.CIFARCNNConfig(data.ImageSize, data.ImageSize), rng)
	case data.HPNews:
		return ml.NewLSTMClassifier(ml.LSTMConfig{
			Vocab: data.TextVocab, Embed: 10, Hidden: 20,
			Classes: data.NumClasses, Momentum: 0.9,
		}, rng)
	default:
		return nil, fmt.Errorf("unknown task kind %v", kind)
	}
}

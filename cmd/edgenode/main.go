// Command edgenode runs one standalone FMore edge node: it generates its
// private local dataset, computes its Nash equilibrium bid, connects to the
// aggregator (cmd/aggregator), and participates in federated training.
//
// Usage (against a running aggregator expecting 4 nodes):
//
//	edgenode -addr localhost:9000 -id 0 -task mnist-o -data 200 &
//	edgenode -addr localhost:9000 -id 1 -task mnist-o -data 120 &
//	edgenode -addr localhost:9000 -id 2 -task mnist-o -data  80 &
//	edgenode -addr localhost:9000 -id 3 -task mnist-o -data  60
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"fmore/internal/auction"
	"fmore/internal/data"
	"fmore/internal/dist"
	"fmore/internal/ml"
	"fmore/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "edgenode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("edgenode", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:9000", "aggregator address")
	id := fs.Int("id", 0, "node id (unique per node)")
	taskName := fs.String("task", "mnist-o", "workload: mnist-o, mnist-f, cifar-10, hpnews")
	dataSize := fs.Int("data", 150, "local dataset size")
	cpu := fs.Float64("cpu", 4, "offered CPU cores (1-8)")
	bandwidth := fs.Float64("bw", 50, "offered bandwidth in Mbps (5-100)")
	seed := fs.Int64("seed", 1, "shared experiment seed")
	epochs := fs.Int("epochs", 1, "local epochs per won round")
	theta := fs.Float64("theta", 0, "private cost parameter (0 = draw randomly)")
	nBidders := fs.Int("bidders", 4, "expected number of competing bidders (for the equilibrium)")
	k := fs.Int("k", 2, "expected number of winners (for the equilibrium)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	task, err := parseTask(*taskName)
	if err != nil {
		return err
	}
	// Private local data: node-specific seed keeps shards distinct across
	// nodes and distinct from the aggregator's test set.
	corpus, err := data.GenerateTask(task, *dataSize, data.NumClasses, *seed+1000+int64(*id))
	if err != nil {
		return err
	}
	model, err := buildModel(task, rand.New(rand.NewSource(*seed+2000+int64(*id))))
	if err != nil {
		return err
	}

	// Equilibrium strategy for the deployment market (additive rule
	// 0.4/0.3/0.3 over normalized CPU/bandwidth/data, as in §V-A).
	rule, err := auction.NewAdditive(0.4, 0.3, 0.3)
	if err != nil {
		return err
	}
	cost, err := auction.NewLinearCost(0.1, 0.1, 0.1)
	if err != nil {
		return err
	}
	thetaDist, err := dist.NewUniform(0.5, 1.5)
	if err != nil {
		return err
	}
	strategy, err := auction.SolveEquilibrium(auction.EquilibriumConfig{
		Rule: rule, Cost: cost, Theta: thetaDist,
		N: *nBidders, K: *k,
		QLo: []float64{0, 0, 0}, QHi: []float64{1, 1, 1},
		ThetaGridPoints: 65, QualityGridPoints: 24,
	})
	if err != nil {
		return err
	}
	myTheta := *theta
	if myTheta == 0 {
		myTheta = thetaDist.Sample(rand.New(rand.NewSource(*seed + 3000 + int64(*id))))
	}

	qualities := []float64{*cpu / 8, *bandwidth / 100, float64(*dataSize) / 10000}
	fmt.Printf("node %d: θ=%.3f data=%d bidding p=%.4f q=%.3v\n",
		*id, myTheta, *dataSize, strategy.Payment(myTheta), qualities)

	summary, err := transport.RunClient(transport.ClientConfig{
		Addr:        *addr,
		NodeID:      *id,
		Model:       model,
		Local:       corpus.Train,
		Qualities:   func(int) []float64 { return qualities },
		Payment:     func(int) float64 { return strategy.Payment(myTheta) },
		LocalEpochs: *epochs,
		Seed:        *seed + 4000 + int64(*id),
	})
	if err != nil {
		return err
	}
	fmt.Printf("node %d: rounds=%d won=%d earned=%.4f final-accuracy=%.4f\n",
		*id, summary.RoundsSeen, summary.RoundsWon, summary.TotalEarned, summary.FinalAccuracy)
	return nil
}

func parseTask(s string) (data.TaskKind, error) {
	switch s {
	case "mnist-o":
		return data.MNISTO, nil
	case "mnist-f":
		return data.MNISTF, nil
	case "cifar-10", "cifar":
		return data.CIFAR10, nil
	case "hpnews":
		return data.HPNews, nil
	default:
		return 0, fmt.Errorf("unknown task %q", s)
	}
}

func buildModel(kind data.TaskKind, rng *rand.Rand) (ml.Classifier, error) {
	switch kind {
	case data.MNISTO, data.MNISTF:
		return ml.NewImageCNN(ml.MNISTCNNConfig(data.ImageSize, data.ImageSize), rng)
	case data.CIFAR10:
		return ml.NewImageCNN(ml.CIFARCNNConfig(data.ImageSize, data.ImageSize), rng)
	case data.HPNews:
		return ml.NewLSTMClassifier(ml.LSTMConfig{
			Vocab: data.TextVocab, Embed: 10, Hidden: 20,
			Classes: data.NumClasses, Momentum: 0.9,
		}, rng)
	default:
		return nil, fmt.Errorf("unknown task kind %v", kind)
	}
}

// fmore-router is a thin partition-aware reverse proxy in front of a
// cluster of fmore-exchange replicas. Clients that cannot (or prefer not
// to) run SDK-side routing talk to the router as if it were a single
// exchange; the router consults the cluster partition map and forwards each
// request to the replica that owns it.
//
//	go run ./cmd/fmore-router -addr :8779 \
//	  -replicas "p0=http://h1:8780,p1=http://h2:8780"
//
// -replicas takes the same "partition=url,..." spec that fmore-exchange's
// -partition-map does; start the router with the map the replicas were
// started with. The router keeps the map fresh on its own: whenever a
// replica answers wrong_partition (HTTP 421) — which happens after a map
// version bump the router has not seen — the router re-fetches
// GET /v1/cluster/partitions, installs the newer map, and re-forwards the
// buffered request once to the replica the refusal named. Requests
// therefore converge in at most one retry, and the retry carries the
// original Idempotency-Key so a redirected POST cannot double-apply.
//
// Routing rules:
//
//   - /v1/jobs/{id}/... goes to the replica owning {id} under rendezvous
//     hashing — including SSE event streams, which are proxied unbuffered.
//   - POST /v1/jobs sniffs the job "id" from the (buffered) body and routes
//     to its owner; specs without an explicit id go to the default replica,
//     whose exchange draws an id it owns.
//   - POST /v1/nodes and /v1/nodes/{id}/* writes fan out to every replica
//     (registration and blacklists gate bids on whichever replica hosts the
//     job), answering with the primary replica's response.
//   - Everything else (listings, metrics, the cluster map itself) goes to
//     the default replica: the lexically first partition.
//
// Overload protection: with -healthz-interval > 0 (default 1s) the router
// probes each replica's GET /v1/healthz on that cadence. While a replica
// advertises overload or durability loss (503 {"status":"overloaded"} or
// {"status":"degraded"} — the latter after a WAL failure under the
// degrade policy), bid submits bound for it are failed fast with
// 429 {"code":"overloaded","retry_after_ms":N} — the replica's own hint —
// without consuming a connection on the struggling backend. A per-replica
// circuit breaker does the same for replicas that stop answering at the
// transport level: three consecutive forward errors open the circuit and
// bid submits shed until a cooldown probe succeeds. Only bid submits are
// ever shed; job creation, round closes, registry writes and event streams
// always forward.
//
// The router's own counters are at GET /router/metrics in Prometheus text
// format: fmore_router_forward_total{partition=...}, fmore_router_fanout_total,
// fmore_router_retry_total, fmore_router_proxy_error_total,
// fmore_router_shed_total and fmore_router_map_version.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fmore/internal/admission"
	"fmore/internal/fault"
	"fmore/internal/partition"
)

// fpForward is the router's forward-path failpoint (see internal/fault):
// dormant — one atomic load — unless a test or FMORE_FAILPOINTS arms it.
var fpForward = fault.New("router/forward")

// maxBufferedBody bounds how much of a request body the router will buffer
// for replay; exchange payloads (job specs, bids) are tiny.
const maxBufferedBody = 8 << 20

// Breaker tuning for replica forwards: three consecutive transport errors
// open the circuit, and a probe is allowed through after one second.
const (
	breakerThreshold = 3
	breakerCooldown  = time.Second
)

// defaultShedRetryMS is the retry_after_ms the router advertises when it
// sheds without a fresher hint from the replica (breaker open, or an
// overloaded replica that sent no hint).
const defaultShedRetryMS = 1000

var jobPathRe = regexp.MustCompile(`^/v1/jobs/([^/]+)(/.*)?$`)

// router proxies exchange requests to the owning replica, retrying once on
// wrong_partition with a refreshed map.
type router struct {
	routes *partition.Handle
	hc     *http.Client

	mu       sync.Mutex
	forwards map[string]*atomic.Int64  // per-partition forward counter
	health   map[string]*replicaHealth // per-partition overload + breaker state

	fanouts    atomic.Int64
	retries    atomic.Int64
	proxyErrs  atomic.Int64
	sheds      atomic.Int64
	refreshing atomic.Bool
}

// replicaHealth is what the router knows about one replica's ability to
// take sheddable load: the overload bit its /v1/healthz advertised on the
// last probe (with the replica's retry hint), and a circuit breaker fed by
// forward outcomes for replicas that stop answering entirely.
type replicaHealth struct {
	overloaded   atomic.Bool
	retryAfterMS atomic.Int64
	breaker      *admission.Breaker
}

func newRouter(m *partition.Map) *router {
	return &router{
		routes:   partition.NewHandle(m),
		hc:       &http.Client{},
		forwards: make(map[string]*atomic.Int64),
		health:   make(map[string]*replicaHealth),
	}
}

func (rt *router) forwardCounter(part string) *atomic.Int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	c := rt.forwards[part]
	if c == nil {
		c = &atomic.Int64{}
		rt.forwards[part] = c
	}
	return c
}

func (rt *router) healthFor(part string) *replicaHealth {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	h := rt.health[part]
	if h == nil {
		h = &replicaHealth{breaker: admission.NewBreaker(breakerThreshold, breakerCooldown)}
		rt.health[part] = h
	}
	return h
}

func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/router/metrics" && r.Method == http.MethodGet {
		rt.metrics(w)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBufferedBody+1))
	if err != nil {
		proxyError(w, http.StatusBadGateway, "reading request body: "+err.Error())
		return
	}
	if len(body) > maxBufferedBody {
		proxyError(w, http.StatusRequestEntityTooLarge, "request body exceeds the router's buffer")
		return
	}

	m := rt.routes.Load()
	if rt.fanout(w, r, m, body) {
		return
	}
	target, ok := rt.target(r, m, body)
	if !ok {
		proxyError(w, http.StatusBadGateway, "router has no partition map")
		return
	}
	// Bid submits are the only load the router sheds: fail fast while the
	// replica advertises overload (healthz probe) or has stopped answering
	// (open breaker), instead of adding our connection to its pile.
	health := rt.healthFor(target.Partition)
	if sheddable(r) {
		if health.overloaded.Load() {
			rt.sheds.Add(1)
			shedOverloaded(w, health.retryAfterMS.Load())
			return
		}
		if !health.breaker.Allow(time.Now().UnixNano()) {
			rt.sheds.Add(1)
			shedOverloaded(w, defaultShedRetryMS)
			return
		}
	}
	rt.forwardCounter(target.Partition).Add(1)

	resp, err := rt.send(r, target.URL, body)
	if err != nil {
		health.breaker.Failure(time.Now().UnixNano())
		rt.proxyErrs.Add(1)
		proxyError(w, http.StatusBadGateway, "forwarding to "+target.Partition+": "+err.Error())
		return
	}
	health.breaker.Success()
	// A replica that does not own the job answers 421 with the owner's URL:
	// refresh the map (a version bump is the usual cause) and re-forward the
	// buffered request once. The replayed request is byte-identical,
	// Idempotency-Key included, so redirected POSTs stay exactly-once.
	if resp.StatusCode == http.StatusMisdirectedRequest {
		ownerURL, ownerPart := misdirectTarget(resp) // consumes the 421 body
		go rt.refreshMap(r.Context(), target.URL)
		if ownerURL == "" {
			rt.proxyErrs.Add(1)
			proxyError(w, http.StatusBadGateway, "replica "+target.Partition+" refused the request without naming an owner")
			return
		}
		rt.retries.Add(1)
		if ownerPart != "" {
			rt.forwardCounter(ownerPart).Add(1)
		}
		resp, err = rt.send(r, ownerURL, body)
		if err != nil {
			rt.proxyErrs.Add(1)
			proxyError(w, http.StatusBadGateway, "retrying on "+ownerURL+": "+err.Error())
			return
		}
	}
	copyResponse(w, resp)
}

// target resolves the replica a request belongs to.
func (rt *router) target(r *http.Request, m *partition.Map, body []byte) (partition.Replica, bool) {
	if m == nil {
		return partition.Replica{}, false
	}
	if sub := jobPathRe.FindStringSubmatch(r.URL.Path); sub != nil {
		if id, err := url.PathUnescape(sub[1]); err == nil {
			if owner, ok := m.Owner(id); ok {
				return owner, true
			}
		}
	}
	if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
		var spec struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(body, &spec) == nil && spec.ID != "" {
			if owner, ok := m.Owner(spec.ID); ok {
				return owner, true
			}
		}
	}
	return m.Default()
}

// fanout handles node-registry writes, which must reach every replica; it
// reports whether it handled the request. The primary (default) replica's
// response is the one returned to the client.
func (rt *router) fanout(w http.ResponseWriter, r *http.Request, m *partition.Map, body []byte) bool {
	if m == nil || r.Method == http.MethodGet || !strings.HasPrefix(r.URL.Path, "/v1/nodes") {
		return false
	}
	rt.fanouts.Add(1)
	primary, _ := m.Default()
	var primaryResp *http.Response
	for _, rep := range m.Partitions {
		rt.forwardCounter(rep.Partition).Add(1)
		resp, err := rt.send(r, rep.URL, body)
		if err != nil {
			rt.proxyErrs.Add(1)
			if rep.Partition == primary.Partition {
				proxyError(w, http.StatusBadGateway, "forwarding to "+rep.Partition+": "+err.Error())
				return true
			}
			continue
		}
		if rep.Partition == primary.Partition {
			primaryResp = resp
		} else {
			resp.Body.Close()
		}
	}
	if primaryResp == nil {
		proxyError(w, http.StatusBadGateway, "no replica answered the fan-out")
		return true
	}
	copyResponse(w, primaryResp)
	return true
}

// send forwards the buffered request to one replica base URL.
func (rt *router) send(r *http.Request, baseURL string, body []byte) (*http.Response, error) {
	u := strings.TrimRight(baseURL, "/") + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, vv := range r.Header {
		if isHopByHop(k) {
			continue
		}
		req.Header[k] = vv
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		prior := r.Header.Get("X-Forwarded-For")
		if prior != "" {
			host = prior + ", " + host
		}
		req.Header.Set("X-Forwarded-For", host)
	}
	// Chaos lever for the forward path: an armed router/forward failpoint
	// makes this hop fail (or stall) like a flaky replica link, feeding the
	// same breaker a real transport error would.
	if err := fpForward.Fire(); err != nil {
		return nil, err
	}
	return rt.hc.Do(req)
}

// sheddable reports whether a request is deliberate-backpressure material:
// only bid submits. Round closes, job creation, registry writes and event
// streams must always be forwarded — shedding those would stall auctions
// rather than protect them.
func sheddable(r *http.Request) bool {
	if r.Method != http.MethodPost {
		return false
	}
	sub := jobPathRe.FindStringSubmatch(r.URL.Path)
	return sub != nil && sub[2] == "/bids"
}

// shedOverloaded answers a router-level shed in the exchange's own
// overload envelope so SDK clients retry after the hint exactly as they
// would for a replica-issued 429.
func shedOverloaded(w http.ResponseWriter, retryMS int64) {
	if retryMS <= 0 {
		retryMS = defaultShedRetryMS
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"code":           "overloaded",
		"message":        "replica is overloaded; retry after the hint",
		"retry_after_ms": retryMS,
	})
}

// probeLoop re-checks every replica's /v1/healthz on the given cadence
// until ctx is cancelled.
func (rt *router) probeLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.probeOnce(ctx)
		}
	}
}

// probeOnce polls each replica's health endpoint and updates its overload
// bit and retry hint. A probe that fails at the transport level leaves the
// last-known state alone — the forward-path breaker handles dead replicas,
// and flapping the overload bit on a lost probe would shed load a healthy
// replica could serve.
func (rt *router) probeOnce(ctx context.Context) {
	m := rt.routes.Load()
	if m == nil {
		return
	}
	for _, rep := range m.Partitions {
		h := rt.healthFor(rep.Partition)
		pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		req, err := http.NewRequestWithContext(pctx, http.MethodGet,
			strings.TrimRight(rep.URL, "/")+"/v1/healthz", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := rt.hc.Do(req)
		if err != nil {
			cancel()
			continue
		}
		var hz struct {
			RetryAfterMS int64 `json:"retry_after_ms"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&hz)
		resp.Body.Close()
		cancel()
		if resp.StatusCode == http.StatusServiceUnavailable {
			h.retryAfterMS.Store(hz.RetryAfterMS)
			h.overloaded.Store(true)
		} else {
			h.overloaded.Store(false)
		}
	}
}

// misdirectTarget extracts the owning replica from a wrong_partition
// envelope, consuming (and restoring nothing of) the 421 response.
func misdirectTarget(resp *http.Response) (ownerURL, ownerPartition string) {
	defer resp.Body.Close()
	var envelope struct {
		ReplicaURL string `json:"replica_url"`
		Partition  string `json:"partition"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&envelope); err != nil {
		return "", ""
	}
	return strings.TrimRight(envelope.ReplicaURL, "/"), envelope.Partition
}

// refreshMap re-fetches the cluster map from a replica and installs it if
// newer. Only one refresh runs at a time; concurrent misroutes piggyback.
func (rt *router) refreshMap(ctx context.Context, fromURL string) {
	if !rt.refreshing.CompareAndSwap(false, true) {
		return
	}
	defer rt.refreshing.Store(false)
	ctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(fromURL, "/")+"/v1/cluster/partitions", nil)
	if err != nil {
		return
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var cp struct {
		Version    int64 `json:"version"`
		Partitions []struct {
			Partition string `json:"partition"`
			URL       string `json:"url"`
		} `json:"partitions"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&cp); err != nil {
		return
	}
	m := &partition.Map{Version: cp.Version}
	for _, p := range cp.Partitions {
		m.Partitions = append(m.Partitions, partition.Replica{Partition: p.Partition, URL: p.URL})
	}
	if m.Validate() != nil {
		return
	}
	if rt.routes.Advance(m) {
		log.Printf("partition map advanced to version %d (%s)", m.Version, m.Spec())
	}
}

// copyResponse relays status, headers and body. Event streams (SSE) are
// flushed write-by-write so round events reach the subscriber as they
// happen rather than when a buffer fills.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vv := range resp.Header {
		if isHopByHop(k) {
			continue
		}
		h[k] = vv
	}
	w.WriteHeader(resp.StatusCode)
	var dst io.Writer = w
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		if f, ok := w.(http.Flusher); ok {
			dst = flushWriter{w: w, f: f}
		}
	}
	_, _ = io.Copy(dst, resp.Body)
}

type flushWriter struct {
	w io.Writer
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	fw.f.Flush()
	return n, err
}

func isHopByHop(header string) bool {
	switch http.CanonicalHeaderKey(header) {
	case "Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
		"Te", "Trailer", "Transfer-Encoding", "Upgrade":
		return true
	}
	return false
}

// proxyError answers a router-level failure in the exchange's JSON envelope
// shape so SDK clients surface it as a regular APIError.
func proxyError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"code": "router_error", "message": msg})
}

// metrics serves the router's counters in Prometheus text format 0.0.4.
func (rt *router) metrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b bytes.Buffer
	b.WriteString("# HELP fmore_router_forward_total Requests forwarded to each replica, by partition.\n")
	b.WriteString("# TYPE fmore_router_forward_total counter\n")
	rt.mu.Lock()
	parts := make([]string, 0, len(rt.forwards))
	for p := range rt.forwards {
		parts = append(parts, p)
	}
	sort.Strings(parts)
	for _, p := range parts {
		fmt.Fprintf(&b, "fmore_router_forward_total{partition=%q} %d\n", p, rt.forwards[p].Load())
	}
	rt.mu.Unlock()
	b.WriteString("# HELP fmore_router_fanout_total Node-registry writes fanned out to every replica.\n")
	b.WriteString("# TYPE fmore_router_fanout_total counter\n")
	fmt.Fprintf(&b, "fmore_router_fanout_total %d\n", rt.fanouts.Load())
	b.WriteString("# HELP fmore_router_retry_total Requests re-forwarded after a wrong_partition refusal.\n")
	b.WriteString("# TYPE fmore_router_retry_total counter\n")
	fmt.Fprintf(&b, "fmore_router_retry_total %d\n", rt.retries.Load())
	b.WriteString("# HELP fmore_router_proxy_error_total Forwards that failed at the transport level.\n")
	b.WriteString("# TYPE fmore_router_proxy_error_total counter\n")
	fmt.Fprintf(&b, "fmore_router_proxy_error_total %d\n", rt.proxyErrs.Load())
	b.WriteString("# HELP fmore_router_shed_total Bid submits failed fast (429) because the owning replica was overloaded or its circuit was open.\n")
	b.WriteString("# TYPE fmore_router_shed_total counter\n")
	fmt.Fprintf(&b, "fmore_router_shed_total %d\n", rt.sheds.Load())
	b.WriteString("# HELP fmore_router_map_version Version of the partition map the router routes by.\n")
	b.WriteString("# TYPE fmore_router_map_version gauge\n")
	version := int64(0)
	if m := rt.routes.Load(); m != nil {
		version = m.Version
	}
	fmt.Fprintf(&b, "fmore_router_map_version %d\n", version)
	_, _ = w.Write(b.Bytes())
}

func main() {
	addr := flag.String("addr", ":8779", "HTTP listen address (:0 picks a free port, logged on start)")
	replicas := flag.String("replicas", "",
		`cluster partition map, "p0=http://host:port,p1=..." (same spec the replicas were started with)`)
	healthzInterval := flag.Duration("healthz-interval", time.Second,
		"how often to probe each replica's /v1/healthz for overload (0 disables probing and health-based shedding)")
	flag.Parse()

	if err := fault.EnableFromEnv(); err != nil {
		log.Fatalf("%s: %v", fault.EnvVar, err)
	}
	m, err := partition.Parse(*replicas)
	if err != nil {
		log.Fatalf("parsing -replicas: %v", err)
	}
	rt := newRouter(m)
	if *healthzInterval > 0 {
		go rt.probeLoop(context.Background(), *healthzInterval)
	}

	listener, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	server := &http.Server{
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("fmore-router listening on %s (replicas=%q)", listener.Addr(), m.Spec())
	if err := server.Serve(listener); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fmore/internal/auction"
	"fmore/internal/exchange"
	"fmore/internal/partition"
	"fmore/internal/promtext"
)

// cluster is a two-replica exchange cluster plus a router in front of it,
// all in-process.
type cluster struct {
	ex     [2]*exchange.Exchange
	rt     *router
	router *httptest.Server
	m      *partition.Map
}

func startCluster(t *testing.T, opts exchange.Options) *cluster {
	t.Helper()
	c := &cluster{}
	handles := [2]*partition.Handle{partition.NewHandle(nil), partition.NewHandle(nil)}
	var urls [2]string
	for i, part := range []string{"p0", "p1"} {
		o := opts
		o.Partition = &partition.Assignment{Local: part, Map: handles[i]}
		c.ex[i] = exchange.New(o)
		srv := httptest.NewServer(exchange.NewHandler(c.ex[i]))
		urls[i] = srv.URL
		ex := c.ex[i]
		t.Cleanup(func() { srv.Close(); ex.Close() })
	}
	c.m = &partition.Map{Version: 1, Partitions: []partition.Replica{
		{Partition: "p0", URL: urls[0]},
		{Partition: "p1", URL: urls[1]},
	}}
	if err := c.m.Validate(); err != nil {
		t.Fatal(err)
	}
	handles[0].Advance(c.m)
	handles[1].Advance(c.m)
	c.rt = newRouter(c.m)
	c.router = httptest.NewServer(c.rt)
	t.Cleanup(c.router.Close)
	return c
}

// jobOn finds a job ID owned by the given partition under m.
func jobOn(t *testing.T, m *partition.Map, part string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("viaproxy-%d", i)
		if m.Owns(part, id) {
			return id
		}
	}
	t.Fatalf("no candidate job for %s", part)
	return ""
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil && err != io.EOF {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, decoded
}

func createJob(t *testing.T, base, id string) {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/jobs", map[string]any{
		"id": id, "k": 2, "seed": 5,
		"rule": map[string]any{"kind": "additive", "alpha": []float64{0.5, 0.5}},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s: status %d body %v", id, resp.StatusCode, body)
	}
}

func scrapeRouter(t *testing.T, c *cluster) *promtext.Metrics {
	t.Helper()
	resp, err := http.Get(c.router.URL + "/router/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/router/metrics status %d", resp.StatusCode)
	}
	metrics, err := promtext.Parse(resp.Body)
	if err != nil {
		t.Fatalf("router exposition failed validation: %v", err)
	}
	return metrics
}

func forwardCount(t *testing.T, metrics *promtext.Metrics, part string) float64 {
	t.Helper()
	fam, ok := metrics.Families["fmore_router_forward_total"]
	if !ok {
		t.Fatal("no fmore_router_forward_total family")
	}
	for _, s := range fam.Samples {
		if s.Labels["partition"] == part {
			return s.Value
		}
	}
	return 0
}

// TestRouterRoutesByJobPath drives jobs owned by both partitions through the
// router and checks each landed on its owning replica with zero retries,
// and that the router's exposition validates.
func TestRouterRoutesByJobPath(t *testing.T) {
	c := startCluster(t, exchange.Options{})
	job0, job1 := jobOn(t, c.m, "p0"), jobOn(t, c.m, "p1")

	for _, id := range []string{job0, job1} {
		createJob(t, c.router.URL, id)
		resp, body := postJSON(t, c.router.URL+"/v1/jobs/"+id+"/bids", map[string]any{
			"node_id": 1, "qualities": []float64{0.7, 0.3}, "payment": 0.1,
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("bid on %s: status %d body %v", id, resp.StatusCode, body)
		}
		resp, body = postJSON(t, c.router.URL+"/v1/jobs/"+id+"/close", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("close %s: status %d body %v", id, resp.StatusCode, body)
		}
		if body["round"] != float64(1) {
			t.Fatalf("close %s: round %v, want 1", id, body["round"])
		}
	}
	if _, ok := c.ex[0].Job(job0); !ok {
		t.Fatalf("%s not hosted on p0", job0)
	}
	if _, ok := c.ex[1].Job(job1); !ok {
		t.Fatalf("%s not hosted on p1", job1)
	}
	// Neither replica ever saw a request for a job it does not own.
	if n := c.ex[0].Metrics().WrongPartition + c.ex[1].Metrics().WrongPartition; n != 0 {
		t.Fatalf("replicas refused %d requests; the router should route first-try", n)
	}

	metrics := scrapeRouter(t, c)
	if got := forwardCount(t, metrics, "p0"); got < 3 {
		t.Fatalf("forward_total{partition=p0} = %v, want >= 3", got)
	}
	if got := forwardCount(t, metrics, "p1"); got < 3 {
		t.Fatalf("forward_total{partition=p1} = %v, want >= 3", got)
	}
	for name, want := range map[string]float64{
		"fmore_router_retry_total":       0,
		"fmore_router_proxy_error_total": 0,
		"fmore_router_map_version":       1,
	} {
		got, err := metrics.Value(name)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}
}

// TestRouterRetriesOnMapBump advances the cluster map under a router still
// routing by v1: the misdirected create is refused once, re-forwarded to
// the owner the refusal named, and the router's map catches up.
func TestRouterRetriesOnMapBump(t *testing.T) {
	c := startCluster(t, exchange.Options{})

	// v2 renames p0 → p2; pick a job moving p0 → p1 so the stale router
	// aims at replica 0 and replica 1 is the true owner.
	v2 := &partition.Map{Version: 2, Partitions: []partition.Replica{
		{Partition: "p2", URL: c.m.Partitions[0].URL},
		{Partition: "p1", URL: c.m.Partitions[1].URL},
	}}
	var moved string
	for i := 0; i < 8192 && moved == ""; i++ {
		id := fmt.Sprintf("bump-%d", i)
		if c.m.Owns("p0", id) && v2.Owns("p1", id) {
			moved = id
		}
	}
	if moved == "" {
		t.Fatal("no job moves p0→p1 across the bump")
	}
	c.ex[0].Partition().Map.Advance(v2)
	c.ex[1].Partition().Map.Advance(v2)

	createJob(t, c.router.URL, moved)
	if _, ok := c.ex[1].Job(moved); !ok {
		t.Fatal("job did not land on the v2 owner")
	}

	metrics := scrapeRouter(t, c)
	if got, _ := metrics.Value("fmore_router_retry_total"); got != 1 {
		t.Fatalf("retry_total = %v, want exactly 1", got)
	}
	// The refresh kicked off by the refusal is asynchronous.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got, _ := scrapeRouter(t, c).Value("fmore_router_map_version"); got == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router map never advanced to version 2")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterFansOutNodeWrites registers a node through the router and checks
// the registration reached every replica: bids gated by -require-registration
// succeed on jobs hosted by either one.
func TestRouterFansOutNodeWrites(t *testing.T) {
	c := startCluster(t, exchange.Options{RequireRegistration: true})
	resp, body := postJSON(t, c.router.URL+"/v1/nodes", map[string]any{"node_id": 7, "meta": "edge-7"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d body %v", resp.StatusCode, body)
	}

	for _, part := range []string{"p0", "p1"} {
		id := jobOn(t, c.m, part)
		createJob(t, c.router.URL, id)
		resp, body := postJSON(t, c.router.URL+"/v1/jobs/"+id+"/bids", map[string]any{
			"node_id": 7, "qualities": []float64{0.6, 0.4}, "payment": 0.1,
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("registered node refused on %s: status %d body %v", part, resp.StatusCode, body)
		}
	}
	if got, _ := scrapeRouter(t, c).Value("fmore_router_fanout_total"); got != 1 {
		t.Fatalf("fanout_total = %v, want 1", got)
	}
}

// TestRouterEventsStream subscribes to a job's SSE stream through the router
// and checks a round event arrives (the stream is proxied, not buffered to
// completion).
func TestRouterEventsStream(t *testing.T) {
	c := startCluster(t, exchange.Options{})
	id := jobOn(t, c.m, "p1")
	createJob(t, c.router.URL, id)

	req, err := http.NewRequest(http.MethodGet, c.router.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q", ct)
	}

	if _, err := c.ex[1].SubmitBid(id, auction.Bid{NodeID: 2, Qualities: []float64{0.5, 0.5}, Payment: 0.1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ex[1].CloseRound(id); err != nil {
		t.Fatal(err)
	}

	got := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		var acc []byte
		for {
			n, err := resp.Body.Read(buf)
			acc = append(acc, buf[:n]...)
			if bytes.Contains(acc, []byte("round_closed")) || err != nil {
				got <- string(acc)
				return
			}
		}
	}()
	select {
	case frames := <-got:
		if !strings.Contains(frames, "round_closed") {
			t.Fatalf("no round_closed event in stream:\n%s", frames)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("round_closed event never arrived through the router")
	}
}

// TestRouterShedsOverloadedReplica: a healthz probe that finds a replica
// overloaded makes the router fail bid submits fast with the replica's own
// retry hint, while round closes still forward; a healthy probe restores
// forwarding, and the sheds show up on /router/metrics.
func TestRouterShedsOverloadedReplica(t *testing.T) {
	var overloaded atomic.Bool
	overloaded.Store(true)
	var backendBids, backendCloses atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/healthz":
			w.Header().Set("Content-Type", "application/json")
			if overloaded.Load() {
				w.WriteHeader(http.StatusServiceUnavailable)
				io.WriteString(w, `{"status":"overloaded","retry_after_ms":250}`)
				return
			}
			io.WriteString(w, `{"status":"ok"}`)
		case strings.HasSuffix(r.URL.Path, "/bids"):
			backendBids.Add(1)
			w.WriteHeader(http.StatusAccepted)
			io.WriteString(w, `{"round":1}`)
		case strings.HasSuffix(r.URL.Path, "/close"):
			backendCloses.Add(1)
			io.WriteString(w, `{"round":1}`)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer backend.Close()

	m := &partition.Map{Version: 1, Partitions: []partition.Replica{{Partition: "p0", URL: backend.URL}}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	rt := newRouter(m)
	front := httptest.NewServer(rt)
	defer front.Close()
	ctx := context.Background()

	rt.probeOnce(ctx)
	resp, err := http.Post(front.URL+"/v1/jobs/j1/bids", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || env["code"] != "overloaded" {
		t.Fatalf("shed response = %d %v", resp.StatusCode, env)
	}
	if ms, _ := env["retry_after_ms"].(float64); ms != 250 {
		t.Fatalf("retry_after_ms = %v, want the replica's hint 250", env["retry_after_ms"])
	}
	if got := backendBids.Load(); got != 0 {
		t.Fatalf("backend saw %d bids while shedding, want 0", got)
	}
	// Round closes are never shed.
	resp, err = http.Post(front.URL+"/v1/jobs/j1/close", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || backendCloses.Load() != 1 {
		t.Fatalf("close while overloaded: status %d, backend closes %d", resp.StatusCode, backendCloses.Load())
	}

	// A healthy probe lifts the shed.
	overloaded.Store(false)
	rt.probeOnce(ctx)
	resp, err = http.Post(front.URL+"/v1/jobs/j1/bids", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || backendBids.Load() != 1 {
		t.Fatalf("bid after recovery: status %d, backend bids %d", resp.StatusCode, backendBids.Load())
	}

	mresp, err := http.Get(front.URL + "/router/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	parsed, err := promtext.Parse(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := parsed.Value("fmore_router_shed_total"); err != nil || v != 1 {
		t.Fatalf("fmore_router_shed_total = %v (%v), want 1", v, err)
	}
}

// TestRouterBreakerFailsFast: a replica that stops answering at the
// transport level trips the per-replica breaker after three consecutive
// forward errors, after which bid submits shed without touching the socket.
func TestRouterBreakerFailsFast(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // nothing listens here anymore

	m := &partition.Map{Version: 1, Partitions: []partition.Replica{{Partition: "p0", URL: deadURL}}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	rt := newRouter(m)
	front := httptest.NewServer(rt)
	defer front.Close()

	for i := 0; i < breakerThreshold; i++ {
		resp, err := http.Post(front.URL+"/v1/jobs/j1/bids", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("forward %d while circuit closed: status %d, want 502", i, resp.StatusCode)
		}
	}
	resp, err := http.Post(front.URL+"/v1/jobs/j1/bids", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || env["code"] != "overloaded" {
		t.Fatalf("post-trip response = %d %v, want fast 429 overloaded", resp.StatusCode, env)
	}
	if rt.sheds.Load() != 1 {
		t.Fatalf("sheds = %d, want 1", rt.sheds.Load())
	}
}

// Command fmore-bench regenerates the paper's evaluation figures (Figs.
// 4-13) and the headline numbers as text tables.
//
// Usage:
//
//	fmore-bench -figure all -scale quick
//	fmore-bench -figure 9 -scale paper
//	fmore-bench -figure headline
package main

import (
	"flag"
	"fmt"
	"os"

	"fmore/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fmore-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fmore-bench", flag.ContinueOnError)
	figure := fs.String("figure", "all", "figure to regenerate: 4..13, headline, or all")
	scaleName := fs.String("scale", "quick", "experiment scale: quick or paper")
	trials := fs.Int("trials", 40, "Monte-Carlo trials for auction sweeps (figs 9b/10b/11b)")
	seed := fs.Int64("seed", 1, "base seed")
	repeats := fs.Int("repeats", 0, "override run repeats (0 = scale default)")
	rounds := fs.Int("rounds", 0, "override federated rounds (0 = scale default)")
	format := fs.String("format", "table", "output format: table or csv")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale sim.Scale
	var cs sim.ClusterScale
	switch *scaleName {
	case "quick":
		scale, cs = sim.QuickScale(), sim.QuickClusterScale()
	case "paper":
		scale, cs = sim.PaperScale(), sim.PaperClusterScale()
	default:
		return fmt.Errorf("unknown scale %q (want quick or paper)", *scaleName)
	}
	scale.Seed, cs.Seed = *seed, *seed
	if *repeats > 0 {
		scale.Repeats = *repeats
	}
	if *rounds > 0 {
		scale.Rounds = *rounds
		cs.Rounds = *rounds
	}

	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q (want table or csv)", *format)
	}
	type genFn func() error
	emit := func(fr *sim.FigureResult, err error) error {
		if err != nil {
			return err
		}
		if *format == "csv" {
			return sim.WriteFigureCSV(os.Stdout, fr)
		}
		return sim.WriteFigure(os.Stdout, fr)
	}
	gens := map[string]genFn{
		"4":  func() error { fr, err := sim.Figure4(scale); return emit(fr, err) },
		"5":  func() error { fr, err := sim.Figure5(scale); return emit(fr, err) },
		"6":  func() error { fr, err := sim.Figure6(scale); return emit(fr, err) },
		"7":  func() error { fr, err := sim.Figure7(scale); return emit(fr, err) },
		"8":  func() error { fr, err := sim.Figure8(scale); return emit(fr, err) },
		"9":  func() error { fr, err := sim.Figure9(scale, *trials); return emit(fr, err) },
		"10": func() error { fr, err := sim.Figure10(scale, *trials); return emit(fr, err) },
		"11": func() error { fr, err := sim.Figure11(scale, *trials); return emit(fr, err) },
		"12": func() error {
			fig12, fig13, err := sim.Figures12And13(cs)
			if err != nil {
				return err
			}
			if err := sim.WriteFigure(os.Stdout, fig12); err != nil {
				return err
			}
			return sim.WriteFigure(os.Stdout, fig13)
		},
		"headline": func() error {
			h, err := sim.HeadlineNumbers(scale, cs)
			if err != nil {
				return err
			}
			return h.Write(os.Stdout)
		},
	}
	gens["13"] = gens["12"] // figs 12 and 13 come from the same cluster runs

	if *figure == "all" {
		for _, id := range []string{"4", "5", "6", "7", "8", "9", "10", "11", "12", "headline"} {
			if err := gens[id](); err != nil {
				return fmt.Errorf("figure %s: %w", id, err)
			}
		}
		return nil
	}
	gen, ok := gens[*figure]
	if !ok {
		return fmt.Errorf("unknown figure %q (want 4..13, headline, or all)", *figure)
	}
	return gen()
}

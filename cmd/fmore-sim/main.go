// Command fmore-sim runs one federated-learning simulation experiment (the
// smart simulator of §V-A) and prints the per-round trace.
//
// Usage:
//
//	fmore-sim -task mnist-o -method fmore -n 100 -k 20 -rounds 20
//	fmore-sim -task hpnews -method randfl -rounds 10
//	fmore-sim -task mnist-f -method psi-fmore -psi 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"fmore/internal/data"
	"fmore/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fmore-sim:", err)
		os.Exit(1)
	}
}

func parseTask(s string) (data.TaskKind, error) {
	switch s {
	case "mnist-o":
		return data.MNISTO, nil
	case "mnist-f":
		return data.MNISTF, nil
	case "cifar-10", "cifar":
		return data.CIFAR10, nil
	case "hpnews":
		return data.HPNews, nil
	default:
		return 0, fmt.Errorf("unknown task %q (mnist-o, mnist-f, cifar-10, hpnews)", s)
	}
}

func parseMethod(s string) (sim.Method, error) {
	switch s {
	case "fmore":
		return sim.MethodFMore, nil
	case "randfl":
		return sim.MethodRandFL, nil
	case "fixfl":
		return sim.MethodFixFL, nil
	case "psi-fmore":
		return sim.MethodPsiFMore, nil
	default:
		return 0, fmt.Errorf("unknown method %q (fmore, randfl, fixfl, psi-fmore)", s)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fmore-sim", flag.ContinueOnError)
	taskName := fs.String("task", "mnist-o", "workload: mnist-o, mnist-f, cifar-10, hpnews")
	methodName := fs.String("method", "fmore", "selection: fmore, randfl, fixfl, psi-fmore")
	n := fs.Int("n", 40, "population size N")
	k := fs.Int("k", 8, "winners per round K")
	rounds := fs.Int("rounds", 10, "federated rounds")
	psi := fs.Float64("psi", 0.5, "psi for psi-fmore")
	repeats := fs.Int("repeats", 1, "runs to average")
	seed := fs.Int64("seed", 1, "base seed")
	timing := fs.Bool("timing", false, "attach the simulated timing model")
	if err := fs.Parse(args); err != nil {
		return err
	}

	task, err := parseTask(*taskName)
	if err != nil {
		return err
	}
	method, err := parseMethod(*methodName)
	if err != nil {
		return err
	}
	scale := sim.QuickScale()
	scale.N, scale.K, scale.Rounds = *n, *k, *rounds
	scale.Repeats = *repeats
	scale.Seed = *seed
	cfg := sim.ExperimentConfig{
		Task: task, Method: method, Scale: scale,
		Psi: *psi, WithTiming: *timing,
	}
	if method != sim.MethodPsiFMore {
		cfg.Psi = 1
	}
	avg, err := sim.RunAveraged(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("task=%s method=%s N=%d K=%d rounds=%d repeats=%d\n",
		task, avg.Selector, *n, *k, *rounds, *repeats)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "round\taccuracy\tloss\tcum-time(s)")
	for i := 0; i < *rounds; i++ {
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\t%.2f\n", i+1, avg.Accuracy[i], avg.Loss[i], avg.CumTime[i])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if avg.MeanPayment > 0 {
		fmt.Printf("mean winner payment: %.4f  mean winner score: %.4f\n",
			avg.MeanPayment, avg.MeanWinnerScore)
	}
	return nil
}

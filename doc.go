// Package fmore is a from-scratch Go reproduction of "FMore: An Incentive
// Scheme of Multi-dimensional Auction for Federated Learning in MEC"
// (Zeng, Zhang, Wang, Chu — ICDCS 2020, arXiv:2002.09699).
//
// The implementation lives in internal packages:
//
//	internal/auction    the multi-dimensional K-winner procurement auction,
//	                    Nash equilibrium bidding (Theorem 1, Euler method),
//	                    ψ-FMore, and the aggregator guidance of Prop. 4
//	internal/fl         FedAvg engine with FMore/RandFL/FixFL selection
//	internal/ml         pure-Go CNN/LSTM training substrate
//	internal/data       synthetic MNIST/Fashion/CIFAR/HPNews stand-ins and
//	                    non-IID partitioning
//	internal/mec        edge-node population, resource dynamics, timing model
//	internal/dist       the θ prior distributions of the bidding game
//	internal/transport  the aggregator/edge-node TCP protocol
//	internal/cluster    the 1 + 31-node deployment harness (Figs. 12-13)
//	internal/exchange   the concurrent multi-job auction exchange service:
//	                    sharded bidder registry, pooled batch scoring,
//	                    per-job round state machines, HTTP/JSON front end;
//	                    also the engine behind internal/transport when
//	                    cluster.Config.UseExchange is set
//	internal/sim        experiment harness regenerating Figs. 4-13
//
// Entry points: cmd/fmore-sim, cmd/fmore-bench, cmd/fmore-cluster,
// cmd/fmore-exchange, cmd/aggregator, cmd/edgenode, and the runnable
// programs in examples/.
// The benchmark suite in bench_test.go regenerates every evaluation figure;
// see DESIGN.md and EXPERIMENTS.md for the experiment inventory.
package fmore

// Auction walkthrough: the five-node example of §III-B (Fig. 3),
// reproduced bid for bid — both rounds, the published score tables, and the
// winner sets {A, D, E} then {A, C, E} — followed by the Nash equilibrium
// strategy §III-B defers to §IV ("we will provide the Nash equilibrium
// strategy to a rational node in Section IV").
//
//	go run ./examples/auction-walkthrough
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fmore/internal/auction"
	"fmore/internal/dist"
)

func main() {
	log.SetFlags(0)

	// The walk-through market: data size on [1000, 5000], bandwidth on
	// [5, 100] Mb, min-max normalized, scored by S = min{0.5 q1, 0.5 q2} − p.
	inner, err := auction.NewLeontief(0.5, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	rule, err := auction.NewNormalized(inner, []float64{1000, 5}, []float64{5000, 100})
	if err != nil {
		log.Fatal(err)
	}
	auctioneer, err := auction.NewAuctioneer(auction.Config{Rule: rule, K: 3}, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}

	names := []string{"A", "B", "C", "D", "E"}
	roundBids := [][]auction.Bid{
		{
			{NodeID: 0, Qualities: []float64{4000, 85}, Payment: 0.20},
			{NodeID: 1, Qualities: []float64{3000, 35}, Payment: 0.10},
			{NodeID: 2, Qualities: []float64{3500, 75}, Payment: 0.18},
			{NodeID: 3, Qualities: []float64{5000, 85}, Payment: 0.20},
			{NodeID: 4, Qualities: []float64{5000, 100}, Payment: 0.20},
		},
		{
			{NodeID: 0, Qualities: []float64{4000, 85}, Payment: 0.16},
			{NodeID: 1, Qualities: []float64{3500, 45}, Payment: 0.10},
			{NodeID: 2, Qualities: []float64{4000, 80}, Payment: 0.15},
			{NodeID: 3, Qualities: []float64{4000, 80}, Payment: 0.20},
			{NodeID: 4, Qualities: []float64{5000, 100}, Payment: 0.30},
		},
	}
	for r, bids := range roundBids {
		outcome, err := auctioneer.Run(bids)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d scores:\n", r+1)
		for i, s := range outcome.Scores {
			fmt.Printf("  %s: %.4f (bid data=%v, bw=%vMb, p=%v)\n",
				names[i], s, bids[i].Qualities[0], bids[i].Qualities[1], bids[i].Payment)
		}
		fmt.Print("  winners: ")
		for _, w := range outcome.Winners {
			fmt.Printf("%s (pays %.3f)  ", names[w.Bid.NodeID], w.Payment)
		}
		fmt.Println()
		fmt.Println()
	}

	// The rational bid: §IV's Theorem 1 equilibrium for a comparable
	// single-dimensional market, solved with the Euler method exactly as
	// Algorithm 1 line 7 prescribes.
	rule1d, err := auction.NewCobbDouglas(2, 0.5) // s(q) = 2√q
	if err != nil {
		log.Fatal(err)
	}
	cost, err := auction.NewLinearCost(1)
	if err != nil {
		log.Fatal(err)
	}
	theta, err := dist.NewUniform(1, 2)
	if err != nil {
		log.Fatal(err)
	}
	strategy, err := auction.SolveEquilibrium(auction.EquilibriumConfig{
		Rule: rule1d, Cost: cost, Theta: theta,
		N: 5, K: 3,
		QLo: []float64{0}, QHi: []float64{1.5},
		Solver: auction.SolverEuler,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Nash equilibrium strategy (N=5, K=3, s=2√q, c=θq, θ~U[1,2]):")
	fmt.Println("  θ      q*(θ)   p*(θ)   score u(θ)  win prob  expected profit")
	for _, th := range []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0} {
		q, p := strategy.Bid(th)
		fmt.Printf("  %.2f   %.4f  %.4f  %.4f      %.3f     %.4f\n",
			th, q[0], p, strategy.ScoreAt(th), strategy.WinProbability(th), strategy.ExpectedProfit(th))
	}
}

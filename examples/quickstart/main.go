// Quickstart: run one FMore auction round and a short federated training,
// end to end, in ~80 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fmore/internal/auction"
	"fmore/internal/data"
	"fmore/internal/sim"
)

func main() {
	log.SetFlags(0)

	// --- Part 1: one standalone auction round -----------------------------
	// The aggregator broadcasts S(q1, q2, p) = 0.6 q1 + 0.4 q2 − p and will
	// select K = 2 winners.
	rule, err := auction.NewAdditive(0.6, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	auctioneer, err := auction.NewAuctioneer(auction.Config{Rule: rule, K: 2}, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	bids := []auction.Bid{
		{NodeID: 0, Qualities: []float64{0.9, 0.8}, Payment: 0.30},
		{NodeID: 1, Qualities: []float64{0.7, 0.9}, Payment: 0.20},
		{NodeID: 2, Qualities: []float64{0.4, 0.5}, Payment: 0.05},
		{NodeID: 3, Qualities: []float64{0.8, 0.3}, Payment: 0.40},
	}
	outcome, err := auctioneer.Run(bids)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("auction winners (best score first):")
	for _, w := range outcome.Winners {
		fmt.Printf("  node %d: score %.3f, paid %.3f\n", w.Bid.NodeID, w.Score, w.Payment)
	}
	fmt.Printf("aggregator profit: %.3f\n\n", outcome.AggregatorProfit)

	// --- Part 2: a short federated training with FMore selection ----------
	scale := sim.QuickScale()
	scale.Rounds = 5
	avg, err := sim.RunAveraged(sim.ExperimentConfig{
		Task:   data.MNISTO,
		Method: sim.MethodFMore,
		Scale:  scale,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federated training on %s with %s selection:\n", data.MNISTO, avg.Selector)
	for i, acc := range avg.Accuracy {
		fmt.Printf("  round %d: accuracy %.3f, loss %.3f\n", i+1, acc, avg.Loss[i])
	}
	fmt.Printf("mean winner payment %.4f, mean winner score %.4f\n",
		avg.MeanPayment, avg.MeanWinnerScore)
}

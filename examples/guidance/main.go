// Guidance example (Proposition 4): how the aggregator steers the mix of
// procured resources by tuning the Cobb–Douglas exponents α, and how it
// estimates the market's cost coefficients β̃ from bidding history.
//
//	go run ./examples/guidance
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fmore/internal/auction"
)

func main() {
	log.SetFlags(0)

	// Market estimates: resource 0 (data) costs 60% of a node's budget
	// share, resource 1 (bandwidth) 40%.
	betaTilde := []float64{0.6, 0.4}

	fmt.Println("Proposition 4: optimal resource mix under s(q) = q1^a1 · q2^a2,")
	fmt.Println("cost c = θ(0.6 q1 + 0.4 q2), budget 100, θ = 1.25")
	fmt.Println("  α            mix(data, bandwidth)    quantities")
	for _, alpha := range [][]float64{{0.5, 0.5}, {0.7, 0.3}, {0.3, 0.7}} {
		mix, err := auction.OptimalMix(alpha, betaTilde)
		if err != nil {
			log.Fatal(err)
		}
		q, err := auction.OptimalQuantities(alpha, betaTilde, 1.25, 100)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %.1f/%.1f      %.3f / %.3f           %.1f / %.1f\n",
			alpha[0], alpha[1], mix[0], mix[1], q[0], q[1])
	}

	// Inverse problem: the aggregator wants twice as much data as bandwidth.
	desired := []float64{2, 1}
	alpha, err := auction.CalibrateAlpha(desired, betaTilde)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nto procure data:bandwidth = 2:1, set α = (%.3f, %.3f)\n", alpha[0], alpha[1])
	mix, err := auction.OptimalMix(alpha, betaTilde)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("check: resulting mix = %.3f / %.3f (ratio %.2f)\n", mix[0], mix[1], mix[0]/mix[1])

	// Estimating β̃ from the public market: observed winning bids follow
	// p ≈ θ̄(β̃1 q1 + β̃2 q2); the estimator recovers the proportions.
	rng := rand.New(rand.NewSource(3))
	var qs [][]float64
	var ps []float64
	for i := 0; i < 300; i++ {
		q := []float64{rng.Float64() * 5, rng.Float64() * 5}
		p := 1.3 * (0.6*q[0] + 0.4*q[1]) * (1 + 0.05*(rng.Float64()-0.5))
		qs = append(qs, q)
		ps = append(ps, p)
	}
	est, err := auction.EstimateBetaTilde(qs, ps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nβ̃ estimated from 300 observed bids: (%.3f, %.3f), true (0.6, 0.4)\n", est[0], est[1])
}

// ψ-FMore example (§III-C): in the small-data regime, admitting nodes with
// probability ψ < 1 trades selection pressure for data diversity. This
// example contrasts selection concentration and training behaviour across ψ,
// and prints the winner-set fill probability Pr(ψ) in both the paper's
// closed form and the exact negative-binomial form.
//
//	go run ./examples/psi-extension
package main

import (
	"fmt"
	"log"

	"fmore/internal/auction"
	"fmore/internal/data"
	"fmore/internal/sim"
)

func main() {
	log.SetFlags(0)

	const n, k = 100, 20
	fmt.Printf("winner-set fill probability Pr(ψ) at N=%d, K=%d:\n", n, k)
	fmt.Println("  ψ      paper Eq.   exact neg-binomial")
	for _, psi := range []float64{0.2, 0.3, 0.5, 0.7, 0.9, 1.0} {
		fmt.Printf("  %.1f    %.6f    %.6f\n", psi,
			auction.PaperSelectionProbability(n, k, psi),
			auction.ExactSelectionProbability(n, k, psi))
	}

	fmt.Println("\nselection concentration (Monte Carlo, of K=20 selected):")
	counts, err := sim.SweepPsi([]float64{0.2, 0.5, 0.8, 0.95}, n, k, 60, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ψ      top-10  top-20  top-30  mean-rank")
	for _, c := range counts {
		fmt.Printf("  %.2f   %5.1f   %5.1f   %5.1f   %6.1f\n",
			c.Psi, c.Top10, c.Top20, c.Top30, c.MeanSelectedScoreRank)
	}

	// Training in the small-data regime: low ψ diversifies, high ψ races.
	scale := sim.QuickScale()
	scale.Rounds = 6
	scale.MaxNodeData = scale.MinNodeData * 2
	scale.MaxSamplesPerRound = scale.MinNodeData
	fmt.Println("\nsmall-data federated training (accuracy per round):")
	fmt.Println("round   ψ=0.3   ψ=0.9")
	var histories []*sim.AvgHistory
	for _, psi := range []float64{0.3, 0.9} {
		avg, err := sim.RunAveraged(sim.ExperimentConfig{
			Task: data.MNISTF, Method: sim.MethodPsiFMore, Psi: psi, Scale: scale,
		})
		if err != nil {
			log.Fatal(err)
		}
		histories = append(histories, avg)
	}
	for i := 0; i < scale.Rounds; i++ {
		fmt.Printf("%5d   %.3f   %.3f\n", i+1, histories[0].Accuracy[i], histories[1].Accuracy[i])
	}
}

// Non-IID simulation: a compact version of Figures 4-7 — FMore vs RandFL vs
// FixFL on one workload, showing the accuracy gap that auction-based
// selection opens on heterogeneous edge data.
//
//	go run ./examples/noniid-sim            (MNIST-F)
//	go run ./examples/noniid-sim -task hpnews
package main

import (
	"flag"
	"fmt"
	"log"

	"fmore/internal/data"
	"fmore/internal/sim"
)

func main() {
	log.SetFlags(0)
	taskName := flag.String("task", "mnist-f", "mnist-o, mnist-f, cifar-10, hpnews")
	rounds := flag.Int("rounds", 8, "federated rounds")
	flag.Parse()

	var task data.TaskKind
	switch *taskName {
	case "mnist-o":
		task = data.MNISTO
	case "mnist-f":
		task = data.MNISTF
	case "cifar-10", "cifar":
		task = data.CIFAR10
	case "hpnews":
		task = data.HPNews
	default:
		log.Fatalf("unknown task %q", *taskName)
	}

	scale := sim.QuickScale()
	scale.Rounds = *rounds
	results := map[sim.Method]*sim.AvgHistory{}
	for _, method := range []sim.Method{sim.MethodFMore, sim.MethodRandFL, sim.MethodFixFL} {
		avg, err := sim.RunAveraged(sim.ExperimentConfig{Task: task, Method: method, Scale: scale})
		if err != nil {
			log.Fatal(err)
		}
		results[method] = avg
	}

	fmt.Printf("accuracy per round on %s (N=%d, K=%d):\n", task, scale.N, scale.K)
	fmt.Println("round   FMore   RandFL  FixFL")
	for i := 0; i < *rounds; i++ {
		fmt.Printf("%5d   %.3f   %.3f   %.3f\n", i+1,
			results[sim.MethodFMore].Accuracy[i],
			results[sim.MethodRandFL].Accuracy[i],
			results[sim.MethodFixFL].Accuracy[i])
	}

	fm, rd := results[sim.MethodFMore], results[sim.MethodRandFL]
	target := rd.FinalAccuracy()
	fmt.Printf("\nrounds to reach RandFL's final accuracy (%.3f): FMore %.1f vs RandFL %.1f\n",
		target, fm.RoundsToAccuracy(target), rd.RoundsToAccuracy(target))
	fmt.Printf("final accuracy: FMore %.3f, RandFL %.3f, FixFL %.3f\n",
		fm.FinalAccuracy(), rd.FinalAccuracy(), results[sim.MethodFixFL].FinalAccuracy())
}

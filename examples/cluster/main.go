// Cluster example: the paper's real-deployment experiment in miniature —
// one aggregator and several edge nodes speaking the FMore protocol over
// loopback TCP, with bid asks, sealed bids, winner notification, model
// distribution and update collection each round.
//
//	go run ./examples/cluster
package main

import (
	"flag"
	"fmt"
	"log"

	"fmore/internal/cluster"
	"fmore/internal/data"
)

func main() {
	log.SetFlags(0)
	nodes := flag.Int("nodes", 8, "edge nodes")
	k := flag.Int("k", 3, "winners per round")
	rounds := flag.Int("rounds", 5, "federated rounds")
	flag.Parse()

	fmt.Printf("starting loopback cluster: %d nodes, K=%d, %d rounds (FMore)\n", *nodes, *k, *rounds)
	res, err := cluster.Run(cluster.Config{
		Nodes: *nodes, K: *k, Rounds: *rounds,
		Task:         data.MNISTO,
		TrainSamples: 800, TestSamples: 200,
		MinNodeData: 30, MaxNodeData: 120,
		Seed:         7,
		BreachNodeID: -1, DropNodeID: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res.Report.Rounds {
		fmt.Printf("round %d: accuracy %.3f loss %.3f winners %v payment %.3f sim-time %.1fs\n",
			r.Round, r.Accuracy, r.Loss, r.SelectedIDs, r.TotalPayment, res.SimTimeSec[i])
	}
	fmt.Printf("final accuracy %.3f after %.1f simulated seconds\n",
		res.Report.FinalAccuracy, res.CumSimTimeSec[len(res.CumSimTimeSec)-1])

	wins := 0
	for _, s := range res.Summaries {
		if s != nil {
			wins += s.RoundsWon
		}
	}
	fmt.Printf("total win slots across nodes: %d (= K × rounds = %d)\n", wins, *k**rounds)
}

// Exchange quickstart: host three concurrent FL jobs on one durable
// auction exchange, stream bids from 16 edge nodes into each, read the
// per-job outcomes and service metrics — then close the exchange and
// reopen its data dir to show the outcome history and registry surviving
// a restart.
//
//	go run ./examples/exchange
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"

	"fmore/internal/auction"
	"fmore/internal/exchange"
	"fmore/internal/transport"
)

const (
	bidders = 16
	rounds  = 2
)

func main() {
	log.SetFlags(0)

	// A data dir makes the exchange durable: every job spec, outcome and
	// registration lands in a write-ahead log that Open replays.
	dataDir, err := os.MkdirTemp("", "fmore-exchange-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir) //nolint:errcheck // example teardown

	ex, err := exchange.Open(dataDir, exchange.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()

	// Three FL tasks with different resource preferences share the exchange:
	// an additive rule (substitutable resources), a Leontief rule
	// (complementary resources), and a Cobb-Douglas rule.
	additive, err := auction.NewAdditive(0.6, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	leontief, err := auction.NewLeontief(1, 1)
	if err != nil {
		log.Fatal(err)
	}
	cobb, err := auction.NewCobbDouglas(2, 0.5, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	specs := []exchange.JobSpec{
		{ID: "cnn-mnist", Auction: auction.Config{Rule: additive, K: 3}, Seed: 1},
		{ID: "cnn-cifar", Auction: auction.Config{Rule: leontief, K: 2}, Seed: 2},
		{ID: "lstm-news", Auction: auction.Config{Rule: cobb, K: 4}, Seed: 3},
	}
	// The lstm-news job also carries the bidder-side game description, so
	// the exchange can hand its edge clients the solved Theorem 1 bid curve
	// (GET /jobs/{id}/strategy over HTTP) instead of each node running the
	// equilibrium solver locally.
	specs[2].Equilibrium = &transport.EquilibriumSpec{
		Cost:  transport.CostSpec{Kind: "linear", Beta: []float64{0.5, 0.5}},
		Theta: transport.DistSpec{Kind: "uniform", Lo: 1, Hi: 2},
		N:     bidders,
		QLo:   []float64{0, 0},
		QHi:   []float64{1, 1},
	}
	for _, spec := range specs {
		if _, err := ex.CreateJob(spec); err != nil {
			log.Fatal(err)
		}
	}

	if job, ok := ex.Job("lstm-news"); ok {
		strat, err := job.Strategy()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("lstm-news equilibrium bid curve (θ → payment):")
		for _, pt := range strat.SampleCurve(5) {
			fmt.Printf("  θ=%.2f  q=(%.2f, %.2f)  p=%.3f\n", pt.Theta, pt.Qualities[0], pt.Qualities[1], pt.Payment)
		}
	}

	// Every node registers once, then bids into every job each round —
	// concurrently, as a real fleet would.
	for i := 0; i < bidders; i++ {
		ex.RegisterNode(i, fmt.Sprintf("edge-%02d", i))
	}
	for round := 1; round <= rounds; round++ {
		var wg sync.WaitGroup
		for i := 0; i < bidders; i++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(100*round + node)))
				for _, spec := range specs {
					bid := auction.Bid{
						NodeID:    node,
						Qualities: []float64{rng.Float64(), rng.Float64()},
						Payment:   0.05 + 0.25*rng.Float64(),
					}
					if _, err := ex.SubmitBid(spec.ID, bid); err != nil {
						log.Fatalf("node %d bid on %s: %v", node, spec.ID, err)
					}
				}
			}(i)
		}
		wg.Wait()

		fmt.Printf("--- round %d ---\n", round)
		for _, spec := range specs {
			ro, err := ex.CloseRound(spec.ID)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s (%s, K=%d): winners", spec.ID, spec.Auction.Rule.Name(), spec.Auction.K)
			for _, w := range ro.Outcome.Winners {
				fmt.Printf(" %d(%.2f)", w.Bid.NodeID, w.Payment)
			}
			fmt.Printf("  profit %.3f, latency %s\n", ro.Outcome.AggregatorProfit, ro.Latency)
		}
	}

	snap := ex.Metrics()
	fmt.Printf("\nexchange served %d jobs, %d rounds, %d bids (p99 round latency %.2fms)\n",
		snap.JobsCreated, snap.RoundsTotal, snap.BidsAccepted, snap.RoundLatencyP99Ms)

	// Restart: close the exchange and replay its log. The jobs come back
	// with their full retained history and continue at the next round.
	ex.Close()
	revived, err := exchange.Open(dataDir, exchange.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer revived.Close()
	fmt.Printf("\n--- after restart from %s ---\n", dataDir)
	for _, spec := range specs {
		job, ok := revived.Job(spec.ID)
		if !ok {
			log.Fatalf("job %s lost across restart", spec.ID)
		}
		ro, err := job.Outcome(rounds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s recovered rounds 1..%d, next round %d, round-%d winners %v\n",
			spec.ID, rounds, job.Round(), rounds, ro.Outcome.WinnerIDs())
	}
	fmt.Printf("registry recovered %d nodes\n", revived.Registry().Len())
}

// Exchange quickstart, SDK edition: host three concurrent FL jobs on one
// durable auction exchange served over its versioned /v1 HTTP API, and
// drive everything through the pkg/client SDK — 16 edge nodes streaming
// bids into each job, an SSE-watching equilibrium bidder that learns each
// round the moment it closes (push, not polling), per-job outcomes and
// service metrics — then restart the exchange from its write-ahead log and
// read the same outcomes back through the same API.
//
//	go run ./examples/exchange
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"

	"fmore/internal/analytics"
	"fmore/internal/exchange"
	"fmore/internal/transport"
	"fmore/pkg/client"
)

const (
	bidders = 16
	rounds  = 2
	// watcherNode is the extra edge node driven by the event stream.
	watcherNode = 99
)

// serve exposes an exchange over HTTP on loopback — with an analytics
// aggregator riding its firehose so the /stats endpoints answer — and
// returns its base URL plus a teardown.
func serve(ex *exchange.Exchange) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	agg := analytics.New(analytics.Options{})
	detach := ex.Firehose().Attach(agg)
	srv := &http.Server{Handler: analytics.NewHandler(ex, agg, exchange.NewHandler(ex))}
	go srv.Serve(ln) //nolint:errcheck // closed on teardown
	stop := func() {
		srv.Close() //nolint:errcheck // example teardown
		detach()
		ex.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// nodeIDs lists the fleet's node IDs (0..n-1).
func nodeIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// A data dir makes the exchange durable: every job spec, outcome and
	// registration lands in a write-ahead log that Open replays.
	dataDir, err := os.MkdirTemp("", "fmore-exchange-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir) //nolint:errcheck // example teardown

	ex, err := exchange.Open(dataDir, exchange.Options{})
	if err != nil {
		log.Fatal(err)
	}
	url, stop, err := serve(ex)
	if err != nil {
		log.Fatal(err)
	}
	c, err := client.New(url)
	if err != nil {
		log.Fatal(err)
	}

	// Three FL tasks with different resource preferences share the exchange:
	// an additive rule (substitutable resources), a Leontief rule
	// (complementary resources), and a Cobb-Douglas rule. The lstm-news job
	// also carries the bidder-side game description, so the exchange serves
	// its edge clients the solved Theorem 1 bid curve over
	// GET /v1/jobs/{id}/strategy instead of each node running the solver.
	specs := []client.JobSpec{
		{ID: "cnn-mnist", Rule: transport.RuleSpec{Kind: "additive", Alpha: []float64{0.6, 0.4}}, K: 3, Seed: 1},
		{ID: "cnn-cifar", Rule: transport.RuleSpec{Kind: "leontief", Alpha: []float64{1, 1}}, K: 2, Seed: 2},
		{ID: "lstm-news", Rule: transport.RuleSpec{Kind: "cobb-douglas", Alpha: []float64{0.5, 0.5}, Scale: 2}, K: 4, Seed: 3,
			Equilibrium: &transport.EquilibriumSpec{
				Cost:  transport.CostSpec{Kind: "linear", Beta: []float64{0.5, 0.5}},
				Theta: transport.DistSpec{Kind: "uniform", Lo: 1, Hi: 2},
				N:     bidders + 1,
				QLo:   []float64{0, 0},
				QHi:   []float64{1, 1},
			}},
	}
	for _, spec := range specs {
		if _, err := c.CreateJob(ctx, spec); err != nil {
			log.Fatal(err)
		}
	}

	strat, err := c.Strategy(ctx, "lstm-news", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lstm-news equilibrium bid curve (θ → payment), served by the exchange:")
	for _, pt := range strat.Points {
		fmt.Printf("  θ=%.2f  q=(%.2f, %.2f)  p=%.3f\n", pt.Theta, pt.Qualities[0], pt.Qualities[1], pt.Payment)
	}

	// Every node registers once through the API.
	for i := 0; i < bidders; i++ {
		if err := c.Register(ctx, i, fmt.Sprintf("edge-%02d", i)); err != nil {
			log.Fatal(err)
		}
	}

	// The SSE-watching bidder: it subscribes to lstm-news's event stream
	// and bids the server-solved equilibrium strategy on every round_open —
	// outcomes arrive by push the moment the round closes. No polling.
	watchCtx, cancelWatch := context.WithCancel(ctx)
	bidder, err := c.NewBidder(ctx, "lstm-news", watcherNode, 1.25)
	if err != nil {
		log.Fatal(err)
	}
	watch, err := c.WatchRounds(watchCtx, "lstm-news", client.WatchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		for ev := range watch.Events() {
			switch ev.Type {
			case client.RoundOpen:
				// A duplicate is benign: the previous bid can spill into
				// this round when submission races the main loop's close.
				if _, err := bidder.Submit(watchCtx); err != nil &&
					client.ErrorCode(err) != client.CodeDuplicateBid {
					return
				}
			case client.RoundClosed:
				payment, won := ev.Outcome.Won(watcherNode)
				fmt.Printf("  [push] lstm-news round %d closed: %d bids, watcher won=%v paid=%.3f\n",
					ev.Round, ev.Outcome.NumBids, won, payment)
			}
		}
	}()

	// 16 nodes bid into every job each round — concurrently, through the
	// API, as a real fleet would.
	for round := 1; round <= rounds; round++ {
		var wg sync.WaitGroup
		for i := 0; i < bidders; i++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(100*round + node)))
				for _, spec := range specs {
					bid := client.Bid{
						NodeID:    node,
						Qualities: []float64{rng.Float64(), rng.Float64()},
						Payment:   0.05 + 0.25*rng.Float64(),
					}
					if _, err := c.SubmitBid(ctx, spec.ID, bid); err != nil {
						log.Fatalf("node %d bid on %s: %v", node, spec.ID, err)
					}
				}
			}(i)
		}
		wg.Wait()

		fmt.Printf("--- round %d ---\n", round)
		for _, spec := range specs {
			out, err := c.CloseRound(ctx, spec.ID)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s (%s, K=%d): winners", spec.ID, spec.Rule.Kind, spec.K)
			for _, w := range out.Winners {
				fmt.Printf(" %d(%.2f)", w.NodeID, w.Payment)
			}
			fmt.Printf("  profit %.3f, latency %.2fms\n", out.AggregatorProfit, out.LatencyMS)
		}
	}
	cancelWatch()
	<-watcherDone

	snap, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexchange served %d jobs, %d rounds, %d bids (p99 round latency %.2fms)\n",
		snap.JobsCreated, snap.RoundsTotal, snap.BidsAccepted, snap.RoundLatencyP99Ms)

	// The analytics rollups ride the firehose asynchronously; drain it so
	// the table below reflects every event from the rounds above.
	if err := ex.Firehose().Drain(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-node rollups from GET /v1/nodes/{id}/stats:")
	fmt.Println("  node      bids  wins  win-rate  paid")
	for _, node := range append(nodeIDs(bidders), watcherNode) {
		st, err := c.NodeStats(ctx, node)
		if err != nil {
			log.Fatalf("node %d stats: %v", node, err)
		}
		life := st.Lifetime
		fmt.Printf("  edge-%02d  %5d %5d  %7.0f%%  %.3f\n",
			node, life.Bids, life.Wins, 100*life.WinRate, life.TotalPayment)
	}
	jst, err := c.JobStats(ctx, "lstm-news")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lstm-news rollup: %d rounds, %d bids, paid %.3f, profit %.3f (avg close %.2fms)\n",
		jst.Lifetime.Rounds, jst.Lifetime.Bids, jst.Lifetime.TotalPayment,
		jst.Lifetime.AggregatorProfit, jst.Lifetime.AvgRoundLatencyMS)

	// Restart: close the exchange and replay its log. The jobs come back
	// with their full retained history — served through the same /v1 API.
	stop()
	revived, err := exchange.Open(dataDir, exchange.Options{})
	if err != nil {
		log.Fatal(err)
	}
	url2, stop2, err := serve(revived)
	if err != nil {
		log.Fatal(err)
	}
	defer stop2()
	c2, err := client.New(url2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- after restart from %s ---\n", dataDir)
	for _, spec := range specs {
		job, err := c2.Job(ctx, spec.ID)
		if err != nil {
			log.Fatalf("job %s lost across restart: %v", spec.ID, err)
		}
		out, err := c2.Outcome(ctx, spec.ID, rounds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s recovered rounds 1..%d, next round %d, round-%d winners %v\n",
			spec.ID, rounds, job.Round, rounds, out.WinnerIDs())
	}
	m2, err := c2.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registry recovered %d nodes\n", m2.NodesKnown)
}
